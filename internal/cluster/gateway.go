package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"icfgpatch/internal/obs"
	"icfgpatch/internal/service"
	"icfgpatch/internal/service/wire"
	"icfgpatch/internal/store"
)

// GatewayConfig configures a Gateway.
type GatewayConfig struct {
	// Peers is the cluster membership the gateway balances onto.
	Peers []string
	// Replicas must match the nodes' replication factor so the gateway's
	// failover candidates are exactly the peers that hold the caches.
	Replicas int
	// VNodes must match the nodes' setting (default DefaultVNodes).
	VNodes int
	// DownTTL is how long a failed peer stays marked down (default
	// DefaultDownTTL).
	DownTTL time.Duration
	// MaxRequestBytes caps /rewrite and /batch POST bodies (0:
	// wire.DefaultMaxBody; negative: unbounded), the same contract as
	// service.Config.MaxRequestBytes. The gateway is the outermost door,
	// so it is the first place an oversized body must die.
	MaxRequestBytes int64
	// HTTPClient overrides http.DefaultClient for forwards and probes.
	HTTPClient *http.Client
}

// Gateway is the cluster's thin stateless front door: it hashes each
// request's binary, forwards to the owning node (failing over through
// the replica set on transport death), and relays the response
// verbatim. It holds no caches and no rewrite machinery — kill it,
// restart it, run several; nothing is lost.
type Gateway struct {
	router
	cfg GatewayConfig
	reg *obs.Registry

	// jobOwner remembers which node accepted each batch job so follow-up
	// /batch/{id} requests land on the node that holds the job. It is
	// soft state: entries are bounded, and an unknown ID (gateway
	// restart, table overflow) degrades to probing the peers — the job
	// record on the owning node is the durable truth.
	jobMu    sync.Mutex
	jobOwner map[string]string
}

// maxJobOwners bounds the gateway's job routing table. Overflow resets
// it (soft state; lookups fall back to probing).
const maxJobOwners = 4096

// NewGateway builds a gateway over the peer set.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	g := &Gateway{
		router:   router{ring: ring, health: NewHealth(cfg.DownTTL), hc: hc, replicas: cfg.Replicas},
		cfg:      cfg,
		reg:      obs.NewRegistry(),
		jobOwner: map[string]string{},
	}
	g.forwards = g.reg.Counter("icfg_cluster_forwards_total",
		"rewrite requests forwarded to an owning peer")
	g.relayTruncated = g.reg.Counter("icfg_cluster_relay_truncated_total",
		"forwarded responses whose relay to the client died mid-body")
	g.reg.GaugeFunc("icfg_cluster_peers_healthy", "cluster peers currently believed reachable", "", "",
		func() float64 { return float64(g.health.CountHealthy(g.ring.peers)) })
	return g, nil
}

// StartProbes runs active /healthz sweeps every interval until ctx
// ends.
func (g *Gateway) StartProbes(ctx context.Context, interval time.Duration) {
	go g.health.ProbeLoop(ctx, g.hc, g.ring.peers, "", interval)
}

// Handler returns the gateway's HTTP surface: /rewrite and /batch
// (routed), /healthz, /metrics, and /cluster.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rewrite", g.handleRewrite)
	mux.HandleFunc("POST /batch", g.handleBatchSubmit)
	mux.HandleFunc("/batch/", g.handleBatchFollow)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", g.reg.Handler())
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(Info{
			Peers:    g.ring.Peers(),
			Healthy:  g.health.CountHealthy(g.ring.peers),
			Replicas: g.replicas,
		})
	})
	return mux
}

func (g *Gateway) handleRewrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Validate feature bits before burning a forward: the gateway is the
	// outermost door, and a bit this build does not understand must die
	// here with a 400, not ride to a node that may silently predate it.
	if _, err := wire.ParseFeatures(r.URL.Query().Get("features")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	raw, ok := wire.ReadBody(w, r, g.cfg.MaxRequestBytes)
	if !ok {
		return
	}
	owners := g.ring.Owners(store.Hash(raw), g.replicas)
	// No routed-by marker: the target is an owner under the shared ring
	// config, and if views skew it may re-route exactly once itself.
	if g.tryOwners(w, r, raw, owners, "", "") {
		return
	}
	http.Error(w, "cluster: no owning peer reachable", http.StatusBadGateway)
}

// handleBatchSubmit routes a whole manifest to one node, chosen by the
// manifest body's hash — deterministic for a re-POSTed manifest, and
// spread across the fleet for distinct ones. The accepting node owns
// the job; its own item executor then routes each binary to the peer
// owning that binary's hash. The 202 body is captured (not streamed)
// so the gateway can learn the job ID → owner association.
func (g *Gateway) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := wire.ReadBody(w, r, g.cfg.MaxRequestBytes)
	if !ok {
		return
	}
	owners := g.ring.Owners(store.Hash(body), g.replicas)
	for pass := 0; pass < 2; pass++ {
		for _, o := range owners {
			if (pass == 0) != g.health.Healthy(o) {
				continue // pass 0 healthy owners, pass 1 the marked-down rest
			}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
				strings.TrimSuffix(o, "/")+"/batch", bytes.NewReader(body))
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := g.hc.Do(req)
			if err != nil {
				if service.Transient(err) {
					g.health.MarkDown(o)
				}
				continue
			}
			respBody, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if err != nil {
				continue
			}
			g.health.MarkUp(o)
			g.forwards.Inc()
			if resp.StatusCode == http.StatusAccepted {
				var acc wire.BatchAccepted
				if json.Unmarshal(respBody, &acc) == nil && acc.ID != "" {
					g.learnJob(acc.ID, o)
				}
			}
			if ct := resp.Header.Get("Content-Type"); ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			w.WriteHeader(resp.StatusCode)
			w.Write(respBody)
			return
		}
	}
	http.Error(w, "cluster: no peer accepted the batch", http.StatusBadGateway)
}

// handleBatchFollow proxies the job-scoped GETs — /batch/{id},
// /batch/{id}/events, /batch/{id}/output/{i} — to the node that owns
// the job. A known ID goes straight to its recorded owner; an unknown
// one (gateway restarted, table overflowed) probes the peers and
// relays the first non-404 answer, re-learning the association.
func (g *Gateway) handleBatchFollow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/batch/")
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	if id == "" {
		http.Error(w, "batch: no job id", http.StatusBadRequest)
		return
	}
	if owner, ok := g.lookupJob(id); ok {
		if g.proxyBatchGet(w, r, owner) != errNotFound {
			return
		}
		g.forgetJob(id) // the owner no longer knows the job; fall through to probing
	}
	for _, o := range g.ring.Peers() {
		if !g.health.Healthy(o) {
			continue
		}
		switch g.proxyBatchGet(w, r, o) {
		case nil:
			g.learnJob(id, o)
			return
		case errNotFound:
			continue
		default:
			return // answered with a non-404 error; relayed, decision final
		}
	}
	http.Error(w, "batch: no such job on any peer", http.StatusNotFound)
}

// errNotFound marks a peer that answered 404 for a job probe.
var errNotFound = fmt.Errorf("cluster: peer has no such job")

// proxyBatchGet relays one job-scoped GET to target, flushing after
// every chunk so SSE events cross the gateway as they happen rather
// than when some buffer fills. Returns errNotFound on a 404 (the
// caller keeps probing), nil or another error once a response has been
// relayed.
func (g *Gateway) proxyBatchGet(w http.ResponseWriter, r *http.Request, target string) error {
	u := strings.TrimSuffix(target, "/") + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		req.Header.Set("Last-Event-ID", v)
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		if service.Transient(err) {
			g.health.MarkDown(target)
		}
		return errNotFound // treat a dead peer like a miss: keep probing
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return errNotFound
	}
	g.health.MarkUp(target)
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				g.relayTruncated.Inc()
				return nil
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			g.relayTruncated.Inc()
			return nil
		}
	}
}

func (g *Gateway) learnJob(id, owner string) {
	g.jobMu.Lock()
	if len(g.jobOwner) >= maxJobOwners {
		g.jobOwner = map[string]string{} // soft state; probing rebuilds it
	}
	g.jobOwner[id] = owner
	g.jobMu.Unlock()
}

func (g *Gateway) lookupJob(id string) (string, bool) {
	g.jobMu.Lock()
	defer g.jobMu.Unlock()
	o, ok := g.jobOwner[id]
	return o, ok
}

func (g *Gateway) forgetJob(id string) {
	g.jobMu.Lock()
	delete(g.jobOwner, id)
	g.jobMu.Unlock()
}
