package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"icfgpatch/internal/obs"
	"icfgpatch/internal/store"
)

// GatewayConfig configures a Gateway.
type GatewayConfig struct {
	// Peers is the cluster membership the gateway balances onto.
	Peers []string
	// Replicas must match the nodes' replication factor so the gateway's
	// failover candidates are exactly the peers that hold the caches.
	Replicas int
	// VNodes must match the nodes' setting (default DefaultVNodes).
	VNodes int
	// DownTTL is how long a failed peer stays marked down (default
	// DefaultDownTTL).
	DownTTL time.Duration
	// HTTPClient overrides http.DefaultClient for forwards and probes.
	HTTPClient *http.Client
}

// Gateway is the cluster's thin stateless front door: it hashes each
// request's binary, forwards to the owning node (failing over through
// the replica set on transport death), and relays the response
// verbatim. It holds no caches and no rewrite machinery — kill it,
// restart it, run several; nothing is lost.
type Gateway struct {
	router
	reg *obs.Registry
}

// NewGateway builds a gateway over the peer set.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	g := &Gateway{
		router: router{ring: ring, health: NewHealth(cfg.DownTTL), hc: hc, replicas: cfg.Replicas},
		reg:    obs.NewRegistry(),
	}
	g.forwards = g.reg.Counter("icfg_cluster_forwards_total",
		"rewrite requests forwarded to an owning peer")
	g.reg.GaugeFunc("icfg_cluster_peers_healthy", "cluster peers currently believed reachable", "", "",
		func() float64 { return float64(g.health.CountHealthy(g.ring.peers)) })
	return g, nil
}

// StartProbes runs active /healthz sweeps every interval until ctx
// ends.
func (g *Gateway) StartProbes(ctx context.Context, interval time.Duration) {
	go g.health.ProbeLoop(ctx, g.hc, g.ring.peers, "", interval)
}

// Handler returns the gateway's HTTP surface: /rewrite (routed),
// /healthz, /metrics, and /cluster.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rewrite", g.handleRewrite)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", g.reg.Handler())
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(Info{
			Peers:    g.ring.Peers(),
			Healthy:  g.health.CountHealthy(g.ring.peers),
			Replicas: g.replicas,
		})
	})
	return mux
}

func (g *Gateway) handleRewrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	owners := g.ring.Owners(store.Hash(raw), g.replicas)
	// No routed-by marker: the target is an owner under the shared ring
	// config, and if views skew it may re-route exactly once itself.
	if g.tryOwners(w, r, raw, owners, "", "") {
		return
	}
	http.Error(w, "cluster: no owning peer reachable", http.StatusBadGateway)
}
