// Package profile defines the block-heat profile artifact: per-function
// execution-heat counts captured from emulated runs of a binary, keyed
// by the binary's content hash. A profile is the input to profile-guided
// rewriting — the planner uses it to decide which functions deserve a
// fast (sparsely instrumented) variant and which trampolines deserve the
// scarce short-branch scratch space.
//
// Profiles are advisory by construction: a missing, corrupt, or trivial
// profile degrades the rewrite to the unguided single-variant plan and
// never changes correctness, only overhead. The serialised form (see
// serialize.go) is hardened against hostile input the same way bin
// deserialization is: count bounds, overflow checks, and a trailing-data
// error.
package profile

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"icfgpatch/internal/arch"
)

// FuncHeat is one function's aggregated heat: how many profiled events
// (control-transfer landings during the capture run) fell inside the
// function's blocks.
type FuncHeat struct {
	// Name is the function's symbol name.
	Name string
	// Entry is the function's entry address (link-time coordinates).
	Entry uint64
	// Blocks is the number of basic blocks the capture saw for the
	// function (informational; dumped by icfg-objdump -profile).
	Blocks uint64
	// Count is the function's total heat.
	Count uint64
}

// Profile is a captured block-heat profile for one binary.
type Profile struct {
	// BinaryHash is the content hash (hex SHA-256 of the serialised
	// binary) the profile was captured from. Consumers may warn or
	// ignore on mismatch; the rewriter matches functions by name, so a
	// stale profile degrades gracefully rather than corrupting output.
	BinaryHash string
	// Arch is the binary's architecture at capture time.
	Arch arch.Arch
	// TotalCount is the sum of all function counts.
	TotalCount uint64
	// Funcs is sorted by Name; Encode relies on the order for
	// deterministic serialisation.
	Funcs []FuncHeat
}

// FuncBlocks describes one function's block set for Build: the capture
// maps raw per-address heat onto functions through it.
type FuncBlocks struct {
	Name   string
	Entry  uint64
	Blocks []uint64
}

// Build aggregates a raw per-address heat map (as captured by
// emu.Options.CaptureHeat, link-time coordinates) into a Profile using
// the binary's function/block structure. Addresses that fall outside
// every listed block are ignored.
func Build(binaryHash string, a arch.Arch, funcs []FuncBlocks, heat map[uint64]uint64) *Profile {
	p := &Profile{BinaryHash: binaryHash, Arch: a}
	for _, f := range funcs {
		fh := FuncHeat{Name: f.Name, Entry: f.Entry, Blocks: uint64(len(f.Blocks))}
		for _, b := range f.Blocks {
			fh.Count += heat[b]
		}
		p.TotalCount += fh.Count
		p.Funcs = append(p.Funcs, fh)
	}
	p.normalize()
	return p
}

// normalize sorts Funcs by name (entry as tiebreak) and recomputes
// TotalCount, making the in-memory form canonical regardless of how it
// was assembled.
func (p *Profile) normalize() {
	sort.Slice(p.Funcs, func(i, j int) bool {
		if p.Funcs[i].Name != p.Funcs[j].Name {
			return p.Funcs[i].Name < p.Funcs[j].Name
		}
		return p.Funcs[i].Entry < p.Funcs[j].Entry
	})
	p.TotalCount = 0
	for _, f := range p.Funcs {
		p.TotalCount += f.Count
	}
}

// Trivial reports whether the profile carries no guidance: no functions
// or no recorded heat. The planner treats a trivial profile exactly like
// a nil one.
func (p *Profile) Trivial() bool {
	return p == nil || len(p.Funcs) == 0 || p.TotalCount == 0
}

// HotFuncs returns the set of function names the profile classifies as
// hot: functions whose count is at least the ceiling of the mean count.
// With uniform heat every warm function is hot; with skewed heat only
// the heavy tail is; with no heat nothing is. Zero-count functions are
// never hot.
func (p *Profile) HotFuncs() map[string]bool {
	hot := map[string]bool{}
	if p.Trivial() {
		return hot
	}
	n := uint64(len(p.Funcs))
	// Ceiling of the mean without Count*n overflow.
	threshold := (p.TotalCount + n - 1) / n
	for _, f := range p.Funcs {
		if f.Count > 0 && f.Count >= threshold {
			hot[f.Name] = true
		}
	}
	return hot
}

// CountByName returns the per-function heat map (nil-safe; empty for a
// trivial profile).
func (p *Profile) CountByName() map[string]uint64 {
	m := map[string]uint64{}
	if p == nil {
		return m
	}
	for _, f := range p.Funcs {
		m[f.Name] = f.Count
	}
	return m
}

// Hash returns the profile's content hash (hex SHA-256 of its canonical
// encoding) — the key under which it participates in rewrite cache
// identity. A nil profile hashes to the empty string.
func (p *Profile) Hash() string {
	if p == nil {
		return ""
	}
	sum := sha256.Sum256(p.Encode())
	return hex.EncodeToString(sum[:])
}
