package profile

import (
	"bytes"
	"strings"
	"testing"

	"icfgpatch/internal/arch"
)

func sample() *Profile {
	return Build("deadbeef", arch.X64, []FuncBlocks{
		{Name: "hot", Entry: 0x1000, Blocks: []uint64{0x1000, 0x1010}},
		{Name: "cold", Entry: 0x2000, Blocks: []uint64{0x2000}},
		{Name: "dead", Entry: 0x3000, Blocks: []uint64{0x3000}},
	}, map[uint64]uint64{0x1000: 90, 0x1010: 8, 0x2000: 2})
}

func TestRoundTrip(t *testing.T) {
	p := sample()
	enc := p.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatalf("round trip changed encoding")
	}
	if got.TotalCount != 100 || len(got.Funcs) != 3 {
		t.Fatalf("got total=%d funcs=%d", got.TotalCount, len(got.Funcs))
	}
	if got.Hash() != p.Hash() || got.Hash() == "" {
		t.Fatalf("hash mismatch: %q vs %q", got.Hash(), p.Hash())
	}
}

func TestEncodeCanonicalOrder(t *testing.T) {
	a := sample()
	b := sample()
	// Scramble b's in-memory order; encodings must still match.
	b.Funcs[0], b.Funcs[2] = b.Funcs[2], b.Funcs[0]
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatalf("encoding depends on in-memory order")
	}
}

func TestHotFuncs(t *testing.T) {
	p := sample()
	hot := p.HotFuncs()
	// Mean is 100/3 → threshold ceil = 34: only "hot" (98) qualifies.
	if !hot["hot"] || hot["cold"] || hot["dead"] {
		t.Fatalf("hot set %v", hot)
	}

	uniform := Build("", arch.PPC, []FuncBlocks{
		{Name: "a", Blocks: []uint64{1}},
		{Name: "b", Blocks: []uint64{2}},
	}, map[uint64]uint64{1: 5, 2: 5})
	hu := uniform.HotFuncs()
	if !hu["a"] || !hu["b"] {
		t.Fatalf("uniform heat should mark all warm funcs hot: %v", hu)
	}

	empty := Build("", arch.A64, []FuncBlocks{{Name: "a", Blocks: []uint64{1}}}, nil)
	if !empty.Trivial() || len(empty.HotFuncs()) != 0 {
		t.Fatalf("zero-heat profile must be trivial with no hot funcs")
	}
	var nilp *Profile
	if !nilp.Trivial() || len(nilp.HotFuncs()) != 0 || nilp.Hash() != "" {
		t.Fatalf("nil profile must be trivial")
	}
}

func TestDecodeRejects(t *testing.T) {
	valid := sample().Encode()
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "bad magic"},
		{"magic", []byte("NOTPROF1xxxx"), "bad magic"},
		{"truncated", valid[:len(valid)-3], "truncated"},
		{"trailing", append(append([]byte{}, valid...), 0xAB), "trailing"},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got err %v, want substring %q", c.name, err, c.want)
		}
	}

	// Hostile function count: claims 2^60 entries.
	huge := append([]byte{}, valid...)
	// Offset of the count field: magic + hash(8+len) + arch(1) + total(8).
	off := len(magic) + 8 + len("deadbeef") + 1 + 8
	for i := 0; i < 8; i++ {
		huge[off+i] = 0xFF
	}
	huge[off+7] = 0x0F
	if _, err := Decode(huge); err == nil || !strings.Contains(err.Error(), "declares") {
		t.Errorf("hostile count: got %v", err)
	}

	// Mismatched total.
	bad := append([]byte{}, valid...)
	bad[len(magic)+8+len("deadbeef")+1] ^= 0x01
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "total") {
		t.Errorf("bad total: got %v", err)
	}
}

func TestDecodeRejectsCountOverflow(t *testing.T) {
	p := &Profile{Arch: arch.X64, Funcs: []FuncHeat{
		{Name: "a", Count: 1 << 63},
		{Name: "b", Count: 1 << 63},
	}}
	// Encode normalizes TotalCount via wrapping sum in Go arithmetic, so
	// craft the wire image by hand: total field 0, two funcs of 2^63.
	enc := p.Encode()
	if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("overflowing counts: got %v", err)
	}
}

func TestCountByName(t *testing.T) {
	m := sample().CountByName()
	if m["hot"] != 98 || m["cold"] != 2 || m["dead"] != 0 {
		t.Fatalf("counts %v", m)
	}
}
