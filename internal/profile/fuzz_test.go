package profile

import (
	"bytes"
	"testing"

	"icfgpatch/internal/arch"
)

// FuzzDecodeProfile asserts Decode never panics on hostile input and
// that every successfully decoded profile re-encodes byte-identically
// (the canonical form is a fixpoint).
func FuzzDecodeProfile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ICFGPRF1"))
	f.Add(sample().Encode())
	f.Add(Build("", arch.PPC, nil, nil).Encode())
	big := Build("hash", arch.A64, []FuncBlocks{
		{Name: "f0", Entry: 0, Blocks: []uint64{0, 8, 16}},
		{Name: "f1", Entry: 32, Blocks: []uint64{32}},
	}, map[uint64]uint64{0: 1 << 40, 8: 3, 32: 7}).Encode()
	f.Add(big)
	trunc := append([]byte{}, big...)
	f.Add(trunc[:len(trunc)/2])
	f.Add(append(append([]byte{}, big...), 1, 2, 3))
	corrupt := append([]byte{}, big...)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		enc := p.Encode()
		q, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !bytes.Equal(q.Encode(), enc) {
			t.Fatalf("canonical encoding is not a fixpoint")
		}
	})
}
