package profile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"icfgpatch/internal/arch"
)

// The serialised profile is deterministic: an 8-byte magic, the binary
// hash, the arch, then a length-prefixed function table sorted by name.
// Decode is hardened the way bin deserialization is: every count is
// bounded by the remaining input, string lengths cannot overflow, and
// trailing bytes are an error (a concatenated or padded artifact is
// corrupt, not silently half-read).

var magic = [8]byte{'I', 'C', 'F', 'G', 'P', 'R', 'F', '1'}

// ErrBadMagic is returned when decoding data that is not a serialised
// profile.
var ErrBadMagic = errors.New("profile: bad magic (not an ICFGPRF1 artifact)")

// funcWireSize is the minimum serialised FuncHeat: name length prefix,
// entry, blocks, count.
const funcWireSize = 8 + 8 + 8 + 8

// Encode serialises the profile. The function table is written in the
// canonical (name-sorted) order so equal profiles encode to equal bytes
// and the content hash is stable.
func (p *Profile) Encode() []byte {
	q := *p
	q.normalize()
	var buf bytes.Buffer
	buf.Write(magic[:])
	writeStr(&buf, q.BinaryHash)
	buf.WriteByte(uint8(q.Arch))
	writeU64(&buf, q.TotalCount)
	writeU64(&buf, uint64(len(q.Funcs)))
	for _, f := range q.Funcs {
		writeStr(&buf, f.Name)
		writeU64(&buf, f.Entry)
		writeU64(&buf, f.Blocks)
		writeU64(&buf, f.Count)
	}
	return buf.Bytes()
}

// Decode parses a serialised profile, validating counts, the arch, the
// recorded total, and that no bytes trail the last table.
func Decode(data []byte) (*Profile, error) {
	if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, ErrBadMagic
	}
	r := &reader{b: data, off: len(magic)}
	p := &Profile{}
	p.BinaryHash = r.str()
	p.Arch = arch.Arch(r.u8())
	p.TotalCount = r.u64()
	n := r.count("function", funcWireSize)
	if r.err == nil && !p.Arch.Valid() {
		r.err = fmt.Errorf("profile: invalid arch %d", p.Arch)
	}
	p.Funcs = make([]FuncHeat, 0, n)
	var total uint64
	for k := uint64(0); k < n && r.err == nil; k++ {
		var f FuncHeat
		f.Name = r.str()
		f.Entry = r.u64()
		f.Blocks = r.u64()
		f.Count = r.u64()
		if sum := total + f.Count; sum < total {
			r.err = fmt.Errorf("profile: function counts overflow uint64 at %q", f.Name)
			break
		} else {
			total = sum
		}
		p.Funcs = append(p.Funcs, f)
	}
	if r.err == nil && total != p.TotalCount {
		r.err = fmt.Errorf("profile: recorded total %d does not match summed counts %d", p.TotalCount, total)
	}
	if r.err == nil && r.off != len(data) {
		r.err = fmt.Errorf("profile: %d trailing bytes after function table", len(data)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	p.normalize()
	return p, nil
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeStr(buf *bytes.Buffer, s string) {
	writeU64(buf, uint64(len(s)))
	buf.WriteString(s)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("profile: truncated input reading %s at offset %d", what, r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail("u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// count reads a table length and rejects any count that could not fit
// in the remaining input given a minimum entry size, bounding both
// allocation and loop work by the input length.
func (r *reader) count(what string, minEntrySize int) uint64 {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if rem := len(r.b) - r.off; n > uint64(rem)/uint64(minEntrySize) {
		if r.err == nil {
			r.err = fmt.Errorf("profile: %s table declares %d entries but only %d bytes remain at offset %d", what, n, rem, r.off)
		}
		return 0
	}
	return n
}

func (r *reader) str() string {
	n := r.u64()
	if r.err != nil || n > uint64(len(r.b)) || r.off+int(n) > len(r.b) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}
