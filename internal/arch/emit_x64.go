package arch

import "fmt"

// x64Emitter emits laid-out items for the variable-width ISA. The far
// veneer forms never arise here — an X64 displacement that does not fit
// the ±2GB PC-relative forms is a layout error, not an expansion — so
// only the emulated-call family and the island/pair forms render.
type x64Emitter struct{}

// Arch identifies the emitter's architecture.
func (x64Emitter) Arch() Arch { return X64 }

// DispatchStub returns the variant-dispatch stub sequence.
func (x64Emitter) DispatchStub(env EmitEnv, selCell uint64) []Instr {
	return dispatchStub(X64, env, selCell)
}

// ExpandedLen returns the encoded length of ins under expansion exp.
func (x64Emitter) ExpandedLen(env EmitEnv, ins Instr, exp Expand) int {
	base := EncLen(X64, ins)
	switch exp {
	case ExpandNone:
		return base
	case ExpandCondIsland:
		return base + EncLen(X64, Instr{Kind: Branch})
	case ExpandLeaPair:
		return EncLen(X64, Instr{Kind: LeaHi}) + EncLen(X64, Instr{Kind: ALUImm})
	case ExpandFarBranch, ExpandFarCall:
		return 3 * 4
	case ExpandEmulCall:
		return 8 + emulRALen(env.PIE) + 8 + 8 + 8 + 5
	case ExpandEmulCallInd:
		return 8 + emulRALen(env.PIE) + 8 + 8 + 8 + 2
	case ExpandEmulCallFar:
		return 5 * 4
	default:
		return base
	}
}

// Render returns the item's final instruction sequence.
func (e x64Emitter) Render(env EmitEnv, it EmitItem) ([]Instr, error) {
	switch it.Expand {
	case ExpandNone:
		return renderForm(it), nil
	case ExpandCondIsland:
		return renderCondIsland(X64, it), nil
	case ExpandLeaPair:
		return renderLeaPair(it), nil
	case ExpandEmulCall, ExpandEmulCallInd:
		return e.emulatedCall(env, it), nil
	}
	return nil, fmt.Errorf("arch: x64: unsupported expansion %s at %#x -> %#x (orig %#x)",
		it.Expand, it.NewAddr, it.Target, it.OrigAddr)
}

// emulatedCall renders the call emulation sequence: the ORIGINAL return
// address is pushed, then control branches to the target. The callee's
// eventual return therefore lands at the original fall-through in
// .text, where a trampoline must wait.
func (x64Emitter) emulatedCall(env EmitEnv, it EmitItem) []Instr {
	origRA := it.OrigAddr + uint64(it.OrigLen)
	scratch := R8
	if it.Ins.Kind == CallInd && it.Ins.Rs1 == R8 {
		scratch = R9
	}
	mat := Instr{Kind: MovImm, Rd: scratch, Imm: int64(origRA)}
	if env.PIE {
		// The pushed value must follow the load base: form it
		// PC-relatively (the displacement to the ORIGINAL return
		// address is a link-time constant).
		mat = Instr{Kind: Lea, Rd: scratch}
	}
	seq := []Instr{
		{Kind: Store, Rs2: scratch, Rs1: SP, Size: 8, Imm: -16},
		mat,
		{Kind: ALUImm, Op: Sub, Rd: SP, Rs1: SP, Imm: 8},
		{Kind: Store, Rs2: scratch, Rs1: SP, Size: 8, Imm: 0},
		{Kind: Load, Rd: scratch, Rs1: SP, Size: 8, Imm: -8},
	}
	if it.Ins.Kind == CallInd {
		seq = append(seq, Instr{Kind: JumpInd, Rs1: it.Ins.Rs1})
	} else {
		seq = append(seq, Instr{Kind: Branch})
	}
	addr := it.NewAddr
	for i := range seq {
		seq[i].Addr = addr
		addr += uint64(EncLen(X64, seq[i]))
	}
	if env.PIE {
		seq[1].SetTarget(origRA)
	}
	if it.Ins.Kind != CallInd {
		seq[len(seq)-1].SetTarget(it.Target)
	}
	return seq
}
