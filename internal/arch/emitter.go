package arch

import "fmt"

// This file defines the per-architecture emission layer of the staged
// patch pipeline. The planner (package core) decides WHAT each relocated
// instruction must do — where its resolved target lives, which expansion
// it grew into when the original encoding's range no longer reached —
// and records that target-neutrally in an EmitItem. The layout stage
// assigns addresses using only ExpandedLen. Only the Emitter knows how
// to turn a laid-out item into bytes, so variable-width X64 and the
// fixed-width ISAs stay behind one interface and emission of one item is
// a pure function of (item, env, arch): two items with equal fields emit
// equal bytes, which is what makes parallel and reuse-aware emission
// byte-identical to a serial pass.

// PatchForm says where an item's resolved target lands in the
// instruction.
type PatchForm uint8

// Patch forms. FormPCRel is the zero value: most relocated operands are
// PC-relative (branches, lea, adrp, loadpc).
const (
	FormPCRel   PatchForm = iota // SetTarget (branches, lea, adrp, loadpc)
	FormImmAbs                   // Imm = target (movimm)
	FormImmLo12                  // Imm = target & 0xFFF (add after adrp)
	FormImmHi16                  // Imm = 16-bit chunk selected by Shift (movz/movk)
)

// String names the patch form.
func (f PatchForm) String() string {
	switch f {
	case FormPCRel:
		return "pcrel"
	case FormImmAbs:
		return "imm-abs"
	case FormImmLo12:
		return "imm-lo12"
	case FormImmHi16:
		return "imm-hi16"
	default:
		return fmt.Sprintf("form(%d)", uint8(f))
	}
}

// Expand marks items that no longer fit their original encoding's range
// after relocation and must grow (branch islands, adrp pairs,
// veneer-style far calls through the TAR/ip0 register).
type Expand uint8

// Expansion states.
const (
	ExpandNone Expand = iota
	ExpandCondIsland
	ExpandLeaPair
	ExpandFarBranch
	ExpandFarCall
	// ExpandEmulCall / ExpandEmulCallInd replace a call with the call
	// emulation sequence (original return address materialised and
	// pushed / moved to LR, then a plain branch) — the SRBI/Multiverse
	// stack-unwinding strategy the paper's RA translation displaces.
	ExpandEmulCall
	ExpandEmulCallInd
	// ExpandEmulCallFar is the fixed-width emulated call whose target is
	// out of direct branch range (LR materialisation plus a veneer).
	ExpandEmulCallFar
)

// String names the expansion state.
func (e Expand) String() string {
	switch e {
	case ExpandNone:
		return "none"
	case ExpandCondIsland:
		return "cond-island"
	case ExpandLeaPair:
		return "lea-pair"
	case ExpandFarBranch:
		return "far-branch"
	case ExpandFarCall:
		return "far-call"
	case ExpandEmulCall:
		return "emul-call"
	case ExpandEmulCallInd:
		return "emul-call-ind"
	case ExpandEmulCallFar:
		return "emul-call-far"
	default:
		return fmt.Sprintf("expand(%d)", uint8(e))
	}
}

// EmitEnv carries the binary-wide facts emission depends on besides the
// architecture itself.
type EmitEnv struct {
	// PIE selects position-independent materialisation of absolute
	// values (emulated calls form the pushed return address
	// PC-relatively so it rebases with the image).
	PIE bool
	// TOCValue is the runtime value of the TOC register on PPC; veneers
	// form their targets relative to it.
	TOCValue uint64
}

// EmitItem is one laid-out relocation item, ready for encoding. Every
// field the Emitter consumes is right here: emission never looks at the
// plan, the relocation map, or the binary, so equal items emit equal
// bytes and cached unit bytes can stand in for re-encoding.
type EmitItem struct {
	// Ins is the instruction to emit (for expansions, the seed the
	// sequence grows from).
	Ins Instr
	// HasTarget reports whether the item's operand was re-resolved; when
	// false the instruction is emitted unchanged.
	HasTarget bool
	// Form says where Target lands in the instruction.
	Form PatchForm
	// Target is the fully resolved concrete address (layout has already
	// applied the relocation map, clone placement, and unit starts).
	Target uint64
	// Expand is the item's expansion state after layout's fixpoint.
	Expand Expand
	// NewAddr / NewLen are the layout-assigned address and total encoded
	// length.
	NewAddr uint64
	NewLen  int
	// OrigAddr / OrigLen locate the original instruction (zero for
	// inserted snippet instructions); emulated calls materialise the
	// original return address OrigAddr+OrigLen.
	OrigAddr uint64
	OrigLen  int
}

// Emitter encodes laid-out relocation items for one architecture.
//
// Contract: ExpandedLen must be consistent with Render — for any item
// the encoded length of Render's sequence equals ExpandedLen of its
// (Ins, Expand) — and Render must depend only on its arguments. Layout
// calls ExpandedLen (never Render), emission calls Render; both may be
// called concurrently from multiple goroutines.
type Emitter interface {
	// Arch identifies the emitter's architecture.
	Arch() Arch
	// ExpandedLen returns the encoded length of ins under expansion exp.
	ExpandedLen(env EmitEnv, ins Instr, exp Expand) int
	// Render returns the item's final instruction sequence with resolved
	// displacements and assigned addresses.
	Render(env EmitEnv, it EmitItem) ([]Instr, error)
	// DispatchStub returns the per-function variant-dispatch stub for
	// profile-guided multi-version rewriting: spill the scratch register
	// below the stack pointer, materialise the function's selector cell
	// address (PC-relatively in PIE images, absolutely otherwise), load
	// the selector, and branch to the alternate variant when it is
	// non-zero. Fall-through continues into the default (full) body.
	// Each variant body must begin with VariantRestore so the spilled
	// register is recovered on both paths. The planner assigns targets:
	// the address-forming instruction (Lea/LeaHi) is patched to the cell
	// like a counter snippet, the trailing conditional branch to the
	// alternate variant's entry.
	DispatchStub(env EmitEnv, selCell uint64) []Instr
}

// VariantRestore returns the instruction that recovers the register
// DispatchStub spilled; every variant body starts with it (the spill /
// restore pair keeps dispatch transparent to the interrupted register
// state, the same discipline counter snippets use).
func VariantRestore() Instr {
	return Instr{Kind: Load, Rd: R8, Rs1: SP, Size: 8, Imm: -16}
}

// dispatchStub builds the stub sequence shared by every emitter; only
// the selector-address materialisation differs by architecture, and it
// mirrors the counter snippet's forms exactly.
func dispatchStub(a Arch, env EmitEnv, selCell uint64) []Instr {
	seq := []Instr{{Kind: Store, Rs2: R8, Rs1: SP, Size: 8, Imm: -16}}
	if env.PIE {
		if a == X64 {
			seq = append(seq, Instr{Kind: Lea, Rd: R8, Imm: int64(selCell)})
		} else {
			seq = append(seq,
				Instr{Kind: LeaHi, Rd: R8, Imm: int64(selCell)},
				Instr{Kind: AddImm16, Rd: R8, Rs1: R8, Imm: int64(selCell & 0xFFF)},
			)
		}
	} else {
		if a == X64 {
			seq = append(seq, Instr{Kind: MovImm, Rd: R8, Imm: int64(selCell)})
		} else {
			seq = append(seq,
				Instr{Kind: MovImm16, Rd: R8, Imm: int64(selCell & 0xFFFF)},
				Instr{Kind: MovK16, Rd: R8, Imm: int64((selCell >> 16) & 0xFFFF), Shift: 1},
			)
		}
	}
	return append(seq,
		Instr{Kind: Load, Rd: R8, Rs1: R8, Size: 8},
		Instr{Kind: BranchCond, Cond: NE, Rs1: R8},
	)
}

// EmitterFor returns the emitter for an architecture.
func EmitterFor(a Arch) Emitter {
	if a == X64 {
		return x64Emitter{}
	}
	return fixedEmitter{a: a}
}

// EmitInto renders and encodes one item into dst (which must be at least
// it.NewLen bytes) and returns the number of bytes written. A sequence
// that encodes to a different length than layout assigned is an internal
// inconsistency between ExpandedLen and Render and is reported as an
// error rather than corrupting neighbouring items.
func EmitInto(e Emitter, env EmitEnv, it EmitItem, dst []byte) (int, error) {
	seq, err := e.Render(env, it)
	if err != nil {
		return 0, err
	}
	enc := ForArch(e.Arch())
	total := 0
	for _, ins := range seq {
		bs, err := enc.Encode(ins)
		if err != nil {
			return 0, fmt.Errorf("arch: %s: encoding relocated %s (expand %s, at %#x -> %#x, orig %#x): %w",
				e.Arch(), ins, it.Expand, it.NewAddr, it.Target, it.OrigAddr, err)
		}
		copy(dst[total:], bs)
		total += len(bs)
	}
	if total != it.NewLen {
		return 0, fmt.Errorf("arch: %s: item at %#x -> %#x (expand %s, orig %#x) emitted %d bytes, laid out %d",
			e.Arch(), it.NewAddr, it.Target, it.Expand, it.OrigAddr, total, it.NewLen)
	}
	return total, nil
}

// renderForm applies the item's patch form to a single instruction — the
// ExpandNone case shared by every emitter.
func renderForm(it EmitItem) []Instr {
	ins := it.Ins
	ins.Addr = it.NewAddr
	switch {
	case !it.HasTarget:
	case it.Form == FormPCRel:
		ins.SetTarget(it.Target)
	case it.Form == FormImmAbs:
		ins.Imm = int64(it.Target)
	case it.Form == FormImmLo12:
		ins.Imm = int64(it.Target & 0xFFF)
	case it.Form == FormImmHi16:
		ins.Imm = int64((it.Target >> (16 * ins.Shift)) & 0xFFFF)
	}
	return []Instr{ins}
}

// renderCondIsland renders bcond.neg over a full-range branch.
func renderCondIsland(a Arch, it EmitItem) []Instr {
	ins := it.Ins
	ins.Addr = it.NewAddr
	condLen := EncLen(a, ins)
	branch := Instr{Kind: Branch, Addr: it.NewAddr + uint64(condLen)}
	branch.SetTarget(it.Target)
	neg := ins
	neg.Cond = ins.Cond.Negate()
	neg.SetTarget(it.NewAddr + uint64(it.NewLen))
	return []Instr{neg, branch}
}

// renderLeaPair renders the adrp-style page/offset pair replacing a
// PC-relative lea whose displacement no longer fits.
func renderLeaPair(it EmitItem) []Instr {
	hi := Instr{Kind: LeaHi, Rd: it.Ins.Rd, Addr: it.NewAddr}
	hi.SetTarget(it.Target)
	lo := Instr{Kind: AddImm16, Rd: it.Ins.Rd, Rs1: it.Ins.Rd, Imm: int64(it.Target & 0xFFF), Addr: it.NewAddr + 4}
	return []Instr{hi, lo}
}

// emulRALen is the length of the X64 instruction materialising the
// original return address in an emulated call: a PC-relative lea in PIE
// (the value must rebase with the image), an absolute movimm otherwise.
func emulRALen(pie bool) int {
	if pie {
		return 6
	}
	return 10
}

// FillIllegal fills a buffer with undecodable bytes, so unreachable
// padding and verification-erased text fault instead of executing
// silently.
func FillIllegal(a Arch, buf []byte) {
	for i := range buf {
		buf[i] = 0xFF
	}
	_ = a
}
