package arch

import (
	"errors"
	"fmt"
)

// Encoding converts between Instr values and machine bytes for one
// architecture. Implementations are stateless and safe for concurrent use.
type Encoding interface {
	// Arch identifies the architecture this encoding serves.
	Arch() Arch
	// Encode returns the machine bytes of the instruction. It fails if
	// the instruction kind does not exist on the architecture, if an
	// immediate or displacement does not fit its field, or if a
	// PC-relative offset is out of branch range.
	Encode(i Instr) ([]byte, error)
	// Decode decodes the instruction at the start of b, which is located
	// at address addr. Undecodable bytes yield an Illegal instruction of
	// minimal length rather than an error; an error is returned only when
	// b is too short to contain any instruction.
	Decode(b []byte, addr uint64) (Instr, error)
	// MinLen and MaxLen bound encoded instruction lengths.
	MinLen() int
	MaxLen() int
}

// ErrShortBuffer is returned by Decode when no instruction fits in the
// remaining bytes.
var ErrShortBuffer = errors.New("arch: buffer too short to decode an instruction")

// rangeError describes an out-of-range immediate or displacement.
func rangeError(i Instr, what string, v int64) error {
	return fmt.Errorf("arch: %s out of range in %q: %d", what, i.String(), v)
}

// ForArch returns the Encoding for architecture a.
func ForArch(a Arch) Encoding {
	switch a {
	case X64:
		return x64Encoding{}
	case PPC:
		return fixedEncoding{arch: PPC}
	case A64:
		return fixedEncoding{arch: A64}
	default:
		panic(fmt.Sprintf("arch: unknown architecture %d", a))
	}
}

// DirectBranchRange returns the maximum forward displacement, in bytes,
// of the architecture's longest-reaching single direct branch instruction
// (the Table 2 "Range" column, one-sided): ±2GB on X64 (5-byte branch),
// ±32MB on PPC, ±128MB on A64.
func DirectBranchRange(a Arch) int64 {
	switch a {
	case X64:
		return 1<<31 - 1
	case PPC:
		return (1<<23 - 1) * 4
	case A64:
		return (1<<25 - 1) * 4
	default:
		return 0
	}
}

// ShortBranchRange returns the maximum forward displacement of the
// architecture's shortest direct branch form: the 2-byte ±128B branch on
// X64; on the fixed-width ISAs the single branch instruction is already
// the shortest form, so this equals DirectBranchRange.
func ShortBranchRange(a Arch) int64 {
	if a == X64 {
		return 127
	}
	return DirectBranchRange(a)
}

// CondBranchRange returns the maximum forward displacement of a
// conditional branch: ±2GB on X64, ±32KB on PPC (the bc form), ±512KB on
// A64. Conditional ranges being narrower than unconditional ones is what
// forces the code relocator to materialise branch islands.
func CondBranchRange(a Arch) int64 {
	switch a {
	case X64:
		return 1<<31 - 1
	case PPC:
		return (1<<13 - 1) * 4
	case A64:
		return (1<<17 - 1) * 4
	default:
		return 0
	}
}

// CallRange returns the maximum forward displacement of a direct call,
// which matches the unconditional branch on every architecture.
func CallRange(a Arch) int64 { return DirectBranchRange(a) }

// LeaRange returns the maximum displacement of the plain PC-relative
// address formation instruction (lea/adr).
func LeaRange(a Arch) int64 {
	if a == X64 {
		return 1<<31 - 1
	}
	return 1<<20 - 1 // adr-style, ±1MB
}

// fitsSigned reports whether v fits in a signed field of the given width.
func fitsSigned(v int64, bits uint) bool {
	lim := int64(1) << (bits - 1)
	return v >= -lim && v < lim
}

// DecodeAll decodes the byte slice b, assumed to start at address addr,
// into consecutive instructions until the bytes are exhausted. Undecodable
// bytes appear as Illegal instructions. It is a convenience for tests and
// the objdump tool; the CFG builder performs control-flow traversal
// instead of this linear sweep.
func DecodeAll(a Arch, b []byte, addr uint64) []Instr {
	enc := ForArch(a)
	var out []Instr
	off := 0
	for off < len(b) {
		ins, err := enc.Decode(b[off:], addr+uint64(off))
		if err != nil {
			break
		}
		out = append(out, ins)
		off += ins.EncLen
	}
	return out
}
