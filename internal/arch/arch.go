// Package arch defines the three synthetic instruction set architectures
// used throughout the toolkit: X64 (a variable-length ISA modelled on
// x86-64), PPC (a fixed-width ISA modelled on ppc64le, with a table of
// contents register and a ±32MB direct branch), and A64 (a fixed-width ISA
// modelled on aarch64, with a ±128MB direct branch and adrp-style address
// formation).
//
// The package provides byte-level encoders and decoders for each ISA,
// register conventions, per-instruction def/use sets for liveness analysis,
// and the trampoline instruction sequences from Table 2 of the paper.
// Every property that the paper's rewriting techniques depend on — branch
// ranges, instruction lengths, the existence of a short branch form, the
// need for a scratch register in long trampolines — is reproduced exactly.
package arch

import "fmt"

// Arch identifies one of the three supported instruction set architectures.
type Arch uint8

// The supported architectures.
const (
	// X64 is a variable-length ISA modelled on x86-64: instructions are
	// 1 to 10 bytes long, direct branches come in a 2-byte form with a
	// ±128 byte range and a 5-byte form with a ±2GB range.
	X64 Arch = iota
	// PPC is a fixed-width (4-byte) ISA modelled on ppc64le: the direct
	// branch reaches ±32MB, register r2 is the table-of-contents (TOC)
	// base, and the long trampoline is a 4-instruction TOC-relative
	// sequence ending in an indirect branch through the TAR register.
	PPC
	// A64 is a fixed-width (4-byte) ISA modelled on aarch64: the direct
	// branch reaches ±128MB and the long trampoline is a 3-instruction
	// adrp/add/br sequence with a ±4GB range.
	A64
)

// String returns the conventional lower-case name of the architecture.
func (a Arch) String() string {
	switch a {
	case X64:
		return "x64"
	case PPC:
		return "ppc"
	case A64:
		return "a64"
	default:
		return fmt.Sprintf("arch(%d)", uint8(a))
	}
}

// All lists every supported architecture, in the order the paper's
// evaluation presents them.
func All() []Arch { return []Arch{X64, PPC, A64} }

// FixedWidth reports whether every instruction of the architecture is
// exactly 4 bytes long (true for PPC and A64, false for X64).
func (a Arch) FixedWidth() bool { return a != X64 }

// InstrAlign returns the required alignment of instruction addresses:
// 4 for the fixed-width ISAs and 1 for X64.
func (a Arch) InstrAlign() uint64 {
	if a.FixedWidth() {
		return 4
	}
	return 1
}

// Valid reports whether a is one of the defined architectures.
func (a Arch) Valid() bool { return a <= A64 }

// Parse maps an architecture name (as String prints it) back to the
// Arch. CLIs must route user-supplied arch strings through here — the
// per-arch encoding tables (ForArch) panic on an invalid Arch, which is
// the right response to a programming error but not to a typo'd flag.
func Parse(s string) (Arch, error) {
	switch s {
	case "x64":
		return X64, nil
	case "ppc":
		return PPC, nil
	case "a64":
		return A64, nil
	default:
		return 0, fmt.Errorf("unknown architecture %q (want x64, ppc, or a64)", s)
	}
}

// Kind enumerates the abstract operations shared by all three ISAs. The
// per-architecture encodings differ in length and branch range, but the
// semantics of each kind are identical, which is what lets the CFG builder,
// dataflow analyses and emulator be architecture-independent.
type Kind uint8

// Instruction kinds.
const (
	// Nop does nothing. Compilers emit runs of Nops as alignment padding,
	// which the rewriter harvests as trampoline scratch space.
	Nop Kind = iota
	// MovImm loads a 64-bit immediate into Rd. On the fixed-width ISAs the
	// assembler synthesises large constants from MovImm16/MovK16 pairs; a
	// single MovImm instruction there carries at most 16 bits.
	MovImm
	// MovImm16 loads a zero-extended 16-bit immediate, shifted left by
	// 16*Shift bits, into Rd (fixed-width ISAs only; movz-like).
	MovImm16
	// MovK16 inserts a 16-bit immediate into bits [16*Shift, 16*Shift+16)
	// of Rd, keeping the other bits (fixed-width ISAs only; movk-like).
	MovK16
	// MovReg copies Rs1 into Rd.
	MovReg
	// ALU computes Rd = Rs1 <op> Rs2.
	ALU
	// ALUImm computes Rd = Rs1 <op> Imm. The immediate fits in 32 bits on
	// X64 and 12 bits on the fixed-width ISAs.
	ALUImm
	// AddIS computes Rd = Rs1 + (Imm << 16) (fixed-width ISAs; the ppc64le
	// addis idiom used by TOC-relative addressing and long trampolines).
	AddIS
	// AddImm16 computes Rd = Rs1 + Imm with a signed 16-bit immediate
	// (fixed-width ISAs; the ppc64le addi idiom).
	AddImm16
	// Load reads SizeBytes bytes from [Rs1 + Imm] into Rd (zero-extended).
	Load
	// Store writes the low SizeBytes bytes of Rs2 to [Rs1 + Imm].
	Store
	// LoadIdx reads SizeBytes bytes from [Rs1 + Rs2*Scale + Imm] into Rd.
	// This is the jump-table read idiom on every architecture.
	LoadIdx
	// Lea forms the address Addr+Imm in Rd, where Addr is the address of
	// the Lea instruction itself (PC-relative address formation; lea/adr).
	Lea
	// LeaHi forms (Addr &^ 0xFFF) + Imm in Rd, where Imm is a multiple of
	// 4096 (the aarch64 adrp idiom; ±4GB range on the fixed-width ISAs).
	LeaHi
	// LoadPC reads SizeBytes bytes from [Addr + Imm] into Rd (x86-64
	// RIP-relative load). The assembler uses it for PIE global access.
	LoadPC
	// Branch jumps to Addr+Imm unconditionally. X64 has a 2-byte short
	// form (±128B) and a 5-byte near form (±2GB); PPC reaches ±32MB and
	// A64 ±128MB in a single 4-byte instruction.
	Branch
	// BranchCond jumps to Addr+Imm if register Rs1 satisfies Cond
	// (compared against zero). Ranges are narrower than Branch on all
	// three ISAs, which matters when relocating code far away.
	BranchCond
	// Call transfers to Addr+Imm, recording the return address: X64 pushes
	// it on the stack, PPC and A64 write it to the link register LR.
	Call
	// CallInd calls the address held in Rs1, recording the return address
	// in the architecture's conventional location.
	CallInd
	// CallIndMem loads a code address from [Rs1 + Imm] and calls it (an
	// indirect call through memory; the construct Dyninst-10.2's call
	// emulation mishandled, per Section 8.1 of the paper).
	CallIndMem
	// JumpInd jumps to the address held in Rs1 (jump-table dispatch and
	// indirect tail calls).
	JumpInd
	// Ret returns to the recorded return address: X64 pops it from the
	// stack, PPC and A64 branch to LR.
	Ret
	// Trap raises a synchronous trap. The rewriter's last-resort
	// trampoline; delivery costs hundreds of cycles in the emulator.
	Trap
	// Halt stops the program; the value in register r0 is the exit status.
	Halt
	// Syscall invokes an emulator service selected by Imm (see package
	// emu); used for output, so that program results can be compared.
	Syscall
	// Throw raises a language-level exception, triggering stack unwinding
	// through the binary's unwind tables (see package unwind).
	Throw
	// Illegal is produced when decoding meaningless bytes. Executing it
	// faults. The paper's verification mode fills rewritten-away original
	// code with illegal instructions to detect escaped control flow.
	Illegal
	// Mark is the endbr-analogue landing-pad marker: a no-op that tags
	// its own address as a legitimate indirect-transfer target. Compilers
	// building with hardware CFI emit one at every function entry and
	// jump-table case; the emulator can enforce CET semantics (fault when
	// an indirect call or jump lands off-marker), and the evidence layer
	// treats marker sites as ground-truth indirect targets.
	Mark
)

var kindNames = [...]string{
	Nop: "nop", MovImm: "movimm", MovImm16: "movz", MovK16: "movk",
	MovReg: "mov", ALU: "alu", ALUImm: "aluimm", AddIS: "addis",
	AddImm16: "addi", Load: "load", Store: "store", LoadIdx: "loadidx",
	Lea: "lea", LeaHi: "adrp", LoadPC: "loadpc", Branch: "b",
	BranchCond: "bcond", Call: "call", CallInd: "callind",
	CallIndMem: "callmem", JumpInd: "jumpind", Ret: "ret", Trap: "trap",
	Halt: "halt", Syscall: "syscall", Throw: "throw", Illegal: "illegal",
	Mark: "endbr",
}

// String returns the mnemonic of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ALUOp selects the operation performed by ALU and ALUImm instructions.
type ALUOp uint8

// ALU operations.
const (
	Add ALUOp = iota
	Sub
	Mul
	Div // unsigned; divide by zero faults
	And
	Or
	Xor
	Shl
	Shr
)

var aluNames = [...]string{"add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr"}

// String returns the mnemonic of the operation.
func (op ALUOp) String() string {
	if int(op) < len(aluNames) {
		return aluNames[op]
	}
	return fmt.Sprintf("aluop(%d)", uint8(op))
}

// Cond selects the condition tested by BranchCond, comparing the value of
// register Rs1 (as a signed 64-bit integer) against zero.
type Cond uint8

// Branch conditions.
const (
	EQ Cond = iota // Rs1 == 0
	NE             // Rs1 != 0
	LT             // Rs1 < 0 (signed)
	GE             // Rs1 >= 0 (signed)
	GT             // Rs1 > 0 (signed)
	LE             // Rs1 <= 0 (signed)
)

var condNames = [...]string{"eq", "ne", "lt", "ge", "gt", "le"}

// String returns the mnemonic of the condition.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Negate returns the condition with the opposite outcome, used when the
// relocator rewrites a conditional branch into a branch-over-island pair.
func (c Cond) Negate() Cond {
	switch c {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case GE:
		return LT
	case GT:
		return LE
	default:
		return GT
	}
}

// Holds reports whether the condition is satisfied by the signed value v.
func (c Cond) Holds(v int64) bool {
	switch c {
	case EQ:
		return v == 0
	case NE:
		return v != 0
	case LT:
		return v < 0
	case GE:
		return v >= 0
	case GT:
		return v > 0
	case LE:
		return v <= 0
	default:
		return false
	}
}

// Instr is one decoded (or to-be-encoded) instruction. The zero value is a
// Nop. Addr and EncLen are populated by the decoder and by the assembler
// after layout; Imm holds immediates, load/store displacements, and — for
// the PC-relative kinds Branch, BranchCond, Call, Lea, LeaHi and LoadPC —
// the byte displacement of the target from the *start address* of the
// instruction, so that target = Addr + Imm.
type Instr struct {
	Kind  Kind
	Op    ALUOp // for ALU, ALUImm
	Cond  Cond  // for BranchCond
	Rd    Reg
	Rs1   Reg
	Rs2   Reg
	Imm   int64
	Size  uint8 // access size in bytes for Load/Store/LoadIdx/LoadPC: 1, 2, 4 or 8
	Scale uint8 // index scale for LoadIdx: 1, 2, 4 or 8
	Shift uint8 // 16-bit chunk index for MovImm16/MovK16: 0..3
	Short bool  // X64 only: request the 2-byte branch encoding
	// Signed marks sign-extending loads (movsxd/lwa/ldrsw): sub-8-byte
	// Load/LoadIdx results are sign-extended instead of zero-extended.
	// Table-relative jump tables depend on it for backward entries.
	Signed bool

	Addr   uint64 // address of the instruction (set by decoder/assembler)
	EncLen int    // encoded length in bytes (set by decoder/assembler)
}

// Target returns the destination address of a PC-relative instruction
// (Branch, BranchCond, Call, Lea, LoadPC) and whether the instruction has
// one. For LeaHi it returns the page-aligned base plus the page offset.
func (i Instr) Target() (uint64, bool) {
	switch i.Kind {
	case Branch, BranchCond, Call, Lea, LoadPC:
		return i.Addr + uint64(i.Imm), true
	case LeaHi:
		return (i.Addr &^ 0xFFF) + uint64(i.Imm), true
	default:
		return 0, false
	}
}

// SetTarget adjusts Imm so that the instruction's PC-relative target is
// addr, given the instruction's current Addr.
func (i *Instr) SetTarget(addr uint64) {
	if i.Kind == LeaHi {
		// adrp forms page addresses: the low 12 bits of the target come
		// from a following add.
		i.Imm = int64((addr &^ 0xFFF) - (i.Addr &^ 0xFFF))
		return
	}
	i.Imm = int64(addr - i.Addr)
}

// IsControlFlow reports whether the instruction ends a basic block.
func (i Instr) IsControlFlow() bool {
	switch i.Kind {
	case Branch, BranchCond, Call, CallInd, CallIndMem, JumpInd, Ret, Halt, Throw, Trap:
		return true
	default:
		return false
	}
}

// IsCall reports whether the instruction is any form of call.
func (i Instr) IsCall() bool {
	return i.Kind == Call || i.Kind == CallInd || i.Kind == CallIndMem
}

// FallsThrough reports whether execution can continue at the next
// sequential instruction (true for non-control-flow, conditional branches
// and calls; false for unconditional transfers and stops).
func (i Instr) FallsThrough() bool {
	switch i.Kind {
	case Branch, JumpInd, Ret, Halt, Throw, Illegal:
		return false
	default:
		return true
	}
}

// String renders the instruction in a compact objdump-like syntax.
func (i Instr) String() string {
	switch i.Kind {
	case Nop, Ret, Trap, Halt, Throw, Illegal, Mark:
		return i.Kind.String()
	case MovImm:
		return fmt.Sprintf("movimm %s, %#x", i.Rd, uint64(i.Imm))
	case MovImm16:
		return fmt.Sprintf("movz %s, %#x, lsl %d", i.Rd, uint16(i.Imm), 16*i.Shift)
	case MovK16:
		return fmt.Sprintf("movk %s, %#x, lsl %d", i.Rd, uint16(i.Imm), 16*i.Shift)
	case MovReg:
		return fmt.Sprintf("mov %s, %s", i.Rd, i.Rs1)
	case ALU:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	case ALUImm:
		return fmt.Sprintf("%si %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case AddIS:
		return fmt.Sprintf("addis %s, %s, %d", i.Rd, i.Rs1, i.Imm)
	case AddImm16:
		return fmt.Sprintf("addi %s, %s, %d", i.Rd, i.Rs1, i.Imm)
	case Load:
		return fmt.Sprintf("load%d %s, [%s%+d]", i.Size, i.Rd, i.Rs1, i.Imm)
	case Store:
		return fmt.Sprintf("store%d %s, [%s%+d]", i.Size, i.Rs2, i.Rs1, i.Imm)
	case LoadIdx:
		return fmt.Sprintf("load%d %s, [%s+%s*%d%+d]", i.Size, i.Rd, i.Rs1, i.Rs2, i.Scale, i.Imm)
	case Lea:
		return fmt.Sprintf("lea %s, pc%+d", i.Rd, i.Imm)
	case LeaHi:
		return fmt.Sprintf("adrp %s, pcpage%+d", i.Rd, i.Imm)
	case LoadPC:
		return fmt.Sprintf("load%d %s, [pc%+d]", i.Size, i.Rd, i.Imm)
	case Branch:
		return fmt.Sprintf("b pc%+d", i.Imm)
	case BranchCond:
		return fmt.Sprintf("b.%s %s, pc%+d", i.Cond, i.Rs1, i.Imm)
	case Call:
		return fmt.Sprintf("call pc%+d", i.Imm)
	case CallInd:
		return fmt.Sprintf("callind %s", i.Rs1)
	case CallIndMem:
		return fmt.Sprintf("callmem [%s%+d]", i.Rs1, i.Imm)
	case JumpInd:
		return fmt.Sprintf("jumpind %s", i.Rs1)
	case Syscall:
		return fmt.Sprintf("syscall %d", i.Imm)
	default:
		return i.Kind.String()
	}
}
