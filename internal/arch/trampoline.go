package arch

import "fmt"

// This file implements the trampoline instruction sequences of Section 7
// (Table 2) of the paper. All sequences are position independent: X64 and
// A64 trampolines are PC-relative, and the PPC long trampoline forms its
// target relative to the TOC register r2, whose value the compiler
// establishes position-independently.
//
//	Arch  Sequence                                        Range   Len
//	x64   2-byte branch                                   ±128B   2B
//	x64   5-byte branch                                   ±2GB    5B
//	ppc   b                                               ±32MB   1I
//	ppc   addis r,r2,hi; addi r,r,lo; mtspr tar,r; bctar  ±2GB    4I
//	a64   b                                               ±128MB  1I
//	a64   adrp r,hi; add r,r,lo; br r                     ±4GB    3I
//
// On PPC, when no dead register is available the trampoline spills one to
// the stack around the address computation (6 instructions). On A64 there
// is no architected spill slot below SP that is async-signal safe in the
// paper's model, so the rewriter falls back to a trap. The 1-byte (X64) or
// 1-instruction trap is the last resort on every architecture.

// TrampolineClass ranks trampoline forms from cheapest to most expensive.
type TrampolineClass uint8

// Trampoline classes in preference order.
const (
	// TrampShort is the architecture's shortest direct branch form.
	TrampShort TrampolineClass = iota
	// TrampLong is the long-range form: the 5-byte branch on X64, the
	// 4-instruction TOC sequence on PPC, the 3-instruction adrp sequence
	// on A64.
	TrampLong
	// TrampLongSpill is the PPC long form with a register spill/restore
	// when liveness analysis finds no dead register (6 instructions).
	TrampLongSpill
	// TrampMulti is the multi-trampoline form: a short branch in the
	// block to a long trampoline installed in scratch space (padding
	// bytes, unused superblock space, or a retired dynamic-linking
	// section).
	TrampMulti
	// TrampTrap is a 1-byte/1-instruction trap whose handler performs the
	// transfer; it always fits but costs a signal delivery at runtime.
	TrampTrap
)

// String names the class.
func (c TrampolineClass) String() string {
	switch c {
	case TrampShort:
		return "short"
	case TrampLong:
		return "long"
	case TrampLongSpill:
		return "long+spill"
	case TrampMulti:
		return "multi-hop"
	case TrampTrap:
		return "trap"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Trampoline is a concrete trampoline: the instruction sequence to place
// at From so that execution continues at To.
type Trampoline struct {
	Class TrampolineClass
	From  uint64
	To    uint64
	// Instrs is the sequence, with Addr fields assigned from From.
	Instrs []Instr
	// Len is the total encoded length in bytes.
	Len int
	// Scratch is the register the sequence clobbers, if any.
	Scratch Reg
}

// ShortTrampolineLen returns the encoded length in bytes of the short
// trampoline form.
func ShortTrampolineLen(a Arch) int {
	if a == X64 {
		return 2
	}
	return 4
}

// LongTrampolineLen returns the encoded length in bytes of the long
// trampoline form (without a spill).
func LongTrampolineLen(a Arch) int {
	switch a {
	case X64:
		return 5
	case PPC:
		return 16
	default:
		return 12
	}
}

// LongSpillTrampolineLen returns the length of the PPC spill variant.
func LongSpillTrampolineLen(a Arch) int {
	if a == PPC {
		return 24
	}
	return LongTrampolineLen(a)
}

// TrapTrampolineLen returns the length of the trap form.
func TrapTrampolineLen(a Arch) int {
	if a == X64 {
		return 1
	}
	return 4
}

// LongTrampolineRange returns the one-sided reach of the long form:
// ±2GB on X64 (PC-relative) and PPC (TOC-relative), ±4GB on A64
// (page-relative adrp).
func LongTrampolineRange(a Arch) int64 {
	if a == A64 {
		return 1 << 32
	}
	return 1<<31 - 1
}

// NewShortTrampoline builds the short-form trampoline from from to to, or
// reports ok=false if the displacement exceeds the short form's range.
func NewShortTrampoline(a Arch, from, to uint64) (Trampoline, bool) {
	disp := int64(to - from)
	if disp > ShortBranchRange(a) || disp < -ShortBranchRange(a)-1 {
		return Trampoline{}, false
	}
	if a.FixedWidth() && disp&3 != 0 {
		return Trampoline{}, false
	}
	ins := Instr{Kind: Branch, Imm: disp, Addr: from, Short: a == X64}
	return Trampoline{
		Class:  TrampShort,
		From:   from,
		To:     to,
		Instrs: []Instr{ins},
		Len:    ShortTrampolineLen(a),
	}, true
}

// NewLongTrampoline builds the long-form trampoline. On X64 the long form
// is the 5-byte branch and scratch is ignored. On PPC the target is formed
// relative to tocValue (the runtime value of r2); scratch may be NoReg, in
// which case the spill variant is produced. On A64 a scratch register is
// mandatory: with scratch == NoReg it reports ok=false, and the caller
// must fall back to a trap (Section 7: "on aarch64, if we cannot find a
// scratch register, we fall back to trap").
func NewLongTrampoline(a Arch, from, to uint64, scratch Reg, tocValue uint64) (Trampoline, bool) {
	switch a {
	case X64:
		disp := int64(to - from)
		if !fitsSigned(disp, 32) {
			return Trampoline{}, false
		}
		return Trampoline{
			Class:  TrampLong,
			From:   from,
			To:     to,
			Instrs: []Instr{{Kind: Branch, Imm: disp, Addr: from}},
			Len:    5,
		}, true
	case PPC:
		off := int64(to - tocValue)
		if !fitsSigned(off, 32) {
			return Trampoline{}, false
		}
		lo := int64(int16(off))
		hi := (off - lo) >> 16
		if !fitsSigned(hi, 16) {
			return Trampoline{}, false
		}
		if scratch != NoReg {
			ins := []Instr{
				{Kind: AddIS, Rd: scratch, Rs1: TOCReg, Imm: hi},
				{Kind: AddImm16, Rd: scratch, Rs1: scratch, Imm: lo},
				{Kind: MovReg, Rd: TAR, Rs1: scratch},
				{Kind: JumpInd, Rs1: TAR},
			}
			return finishSeq(a, TrampLong, from, to, scratch, ins), true
		}
		// Spill variant: save r6 below the stack pointer, restore it
		// after the target has been moved into TAR.
		s := R6
		ins := []Instr{
			{Kind: Store, Rs2: s, Rs1: SP, Size: 8, Imm: -8},
			{Kind: AddIS, Rd: s, Rs1: TOCReg, Imm: hi},
			{Kind: AddImm16, Rd: s, Rs1: s, Imm: lo},
			{Kind: MovReg, Rd: TAR, Rs1: s},
			{Kind: Load, Rd: s, Rs1: SP, Size: 8, Imm: -8},
			{Kind: JumpInd, Rs1: TAR},
		}
		return finishSeq(a, TrampLongSpill, from, to, s, ins), true
	case A64:
		if scratch == NoReg {
			return Trampoline{}, false
		}
		page := int64((to &^ 0xFFF) - (from &^ 0xFFF))
		loBits := int64(to & 0xFFF)
		if !fitsSigned(page>>12, 21) {
			return Trampoline{}, false
		}
		ins := []Instr{
			{Kind: LeaHi, Rd: scratch, Imm: page},
			{Kind: ALUImm, Op: Add, Rd: scratch, Rs1: scratch, Imm: loBits},
			{Kind: JumpInd, Rs1: scratch},
		}
		return finishSeq(a, TrampLong, from, to, scratch, ins), true
	default:
		return Trampoline{}, false
	}
}

// NewTrapTrampoline builds the last-resort trap trampoline. The transfer
// target is recorded out of band (in the rewritten binary's trampoline map
// consumed by the runtime library's signal handler).
func NewTrapTrampoline(a Arch, from, to uint64) Trampoline {
	return Trampoline{
		Class:  TrampTrap,
		From:   from,
		To:     to,
		Instrs: []Instr{{Kind: Trap, Addr: from}},
		Len:    TrapTrampolineLen(a),
	}
}

// finishSeq assigns addresses and computes the total length of a
// fixed-width sequence.
func finishSeq(a Arch, class TrampolineClass, from, to uint64, scratch Reg, ins []Instr) Trampoline {
	addr := from
	for k := range ins {
		ins[k].Addr = addr
		ins[k].EncLen = 4
		addr += 4
	}
	return Trampoline{
		Class:   class,
		From:    from,
		To:      to,
		Instrs:  ins,
		Len:     len(ins) * 4,
		Scratch: scratch,
	}
}

// Encode serialises the trampoline's instruction sequence.
func (t Trampoline) Encode(a Arch) ([]byte, error) {
	enc := ForArch(a)
	var out []byte
	for _, ins := range t.Instrs {
		b, err := enc.Encode(ins)
		if err != nil {
			return nil, fmt.Errorf("arch: %s: encoding %s trampoline at %#x -> %#x: %w", a, t.Class, t.From, t.To, err)
		}
		out = append(out, b...)
	}
	if len(out) != t.Len {
		return nil, fmt.Errorf("arch: %s: %s trampoline at %#x -> %#x length mismatch: declared %d, encoded %d",
			a, t.Class, t.From, t.To, t.Len, len(out))
	}
	return out, nil
}

// Table2Row is one row of the paper's Table 2, regenerated by the
// experiment harness.
type Table2Row struct {
	Arch     Arch
	Sequence string
	Range    string // one-sided ± branching range
	Len      string // bytes (B) on x64, instructions (I) on fixed-width ISAs
}

// Table2 returns the trampoline design table (paper Table 2).
func Table2() []Table2Row {
	return []Table2Row{
		{X64, "2-byte branch", "128B", "2B"},
		{X64, "5-byte branch", "2GB", "5B"},
		{PPC, "b", "32MB", "1I"},
		{PPC, "addis reg,r2,hi; addi reg,reg,lo; mtspr tar,reg; bctar", "2GB", "4I"},
		{A64, "b", "128MB", "1I"},
		{A64, "adrp reg,hi; add reg,reg,lo; br reg", "4GB", "3I"},
	}
}
