package arch

// EncLen returns the encoded length in bytes of the instruction on the
// given architecture without encoding it. Lengths depend only on the
// kind (and the Short flag on X64), which is what lets the assembler and
// the code relocator lay out code before displacements are resolved.
func EncLen(a Arch, i Instr) int {
	if a.FixedWidth() {
		return 4
	}
	switch i.Kind {
	case Nop, Ret, Trap, Halt, Throw, Illegal, Mark:
		return 1
	case Syscall, MovReg, CallInd, JumpInd:
		if i.Kind == MovReg {
			return 3
		}
		if i.Kind == Syscall {
			return 2
		}
		return 2
	case MovImm:
		return 10
	case ALU:
		return 5
	case ALUImm:
		return 8
	case Load, Store:
		return 8
	case LoadIdx:
		return 10
	case Lea:
		return 6
	case LoadPC:
		return 7
	case Branch:
		if i.Short {
			return 2
		}
		return 5
	case BranchCond:
		return 7
	case Call:
		return 5
	case CallIndMem:
		return 6
	default:
		return 1
	}
}
