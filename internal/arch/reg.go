package arch

import "fmt"

// Reg names a machine register. Registers r0 through r15 are general
// purpose on every architecture; LR and TAR are special registers that
// exist only on the fixed-width ISAs (PPC and A64).
type Reg uint8

// Register assignments and conventions shared by the three ISAs.
const (
	// R0 holds function return values and the Halt exit status.
	R0 Reg = iota
	R1     // first argument register
	R2     // second argument; on PPC also the TOC base (see TOCReg)
	R3     // third argument
	R4     // fourth argument
	R5     // fifth argument
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	// SP is the stack pointer (r15 by convention on all three ISAs).
	SP
	// LR is the link register holding return addresses on PPC and A64.
	// X64 has no LR; calls push the return address on the stack.
	LR
	// TAR is the branch target special register on PPC ("reserved for
	// system software" per the paper); the 4-instruction long trampoline
	// branches through it so no general register needs to be clobbered
	// at the branch itself.
	TAR

	// NumRegs is the size of the architectural register file including
	// the special registers.
	NumRegs = 18
	// NumGPRegs counts only the general-purpose registers r0..r15.
	NumGPRegs = 16
)

// TOCReg is the table-of-contents base register on PPC: position
// independent ppc64le code addresses globals relative to r2, and the long
// trampoline forms its target TOC-relatively so that it stays position
// independent.
const TOCReg = R2

// NoReg is a sentinel for "no register" in def/use reporting.
const NoReg Reg = 0xFF

// String returns the conventional register name.
func (r Reg) String() string {
	switch {
	case r == SP:
		return "sp"
	case r == LR:
		return "lr"
	case r == TAR:
		return "tar"
	case r < SP:
		return fmt.Sprintf("r%d", uint8(r))
	default:
		return fmt.Sprintf("reg(%d)", uint8(r))
	}
}

// Valid reports whether r denotes an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// RegSet is a bitset of registers, used by the liveness analysis that
// finds scratch registers for long trampolines.
type RegSet uint32

// Add returns the set with r included.
func (s RegSet) Add(r Reg) RegSet {
	if !r.Valid() {
		return s
	}
	return s | 1<<r
}

// Remove returns the set with r excluded.
func (s RegSet) Remove(r Reg) RegSet { return s &^ (1 << r) }

// Has reports whether r is in the set.
func (s RegSet) Has(r Reg) bool { return r.Valid() && s&(1<<r) != 0 }

// Union returns the union of the two sets.
func (s RegSet) Union(o RegSet) RegSet { return s | o }

// Minus returns the elements of s not in o.
func (s RegSet) Minus(o RegSet) RegSet { return s &^ o }

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for v := uint32(s); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// AllGP is the set of all general-purpose registers.
func AllGP() RegSet { return RegSet(1<<NumGPRegs - 1) }

// Uses returns the set of registers read by the instruction, including
// implicit reads (Ret reads LR on the fixed-width ISAs and SP on X64;
// every call reads nothing extra but Store reads its source).
func (i Instr) Uses(a Arch) RegSet {
	var s RegSet
	switch i.Kind {
	case MovReg:
		s = s.Add(i.Rs1)
	case MovK16:
		s = s.Add(i.Rd) // read-modify-write
	case ALU:
		s = s.Add(i.Rs1).Add(i.Rs2)
	case ALUImm, AddIS, AddImm16:
		s = s.Add(i.Rs1)
	case Load:
		s = s.Add(i.Rs1)
	case Store:
		s = s.Add(i.Rs1).Add(i.Rs2)
	case LoadIdx:
		s = s.Add(i.Rs1).Add(i.Rs2)
	case BranchCond:
		s = s.Add(i.Rs1)
	case CallInd, JumpInd:
		s = s.Add(i.Rs1)
	case CallIndMem:
		s = s.Add(i.Rs1)
	case Ret:
		if a.FixedWidth() {
			s = s.Add(LR)
		} else {
			s = s.Add(SP)
		}
	case Call:
		if !a.FixedWidth() {
			s = s.Add(SP)
		}
	case Halt, Syscall:
		s = s.Add(R0).Add(R1)
	}
	return s
}

// Defs returns the set of registers written by the instruction, including
// implicit writes (calls clobber LR on the fixed-width ISAs and SP on X64).
func (i Instr) Defs(a Arch) RegSet {
	var s RegSet
	switch i.Kind {
	case MovImm, MovImm16, MovK16, MovReg, ALU, ALUImm, AddIS, AddImm16,
		Load, LoadIdx, Lea, LeaHi, LoadPC:
		s = s.Add(i.Rd)
	case Call, CallInd, CallIndMem:
		if a.FixedWidth() {
			s = s.Add(LR)
		} else {
			s = s.Add(SP)
		}
	case Ret:
		if !a.FixedWidth() {
			s = s.Add(SP)
		}
	case Syscall:
		s = s.Add(R0)
	}
	return s
}
