package arch

import "encoding/binary"

// x64Encoding implements the variable-length X64 instruction encoding.
//
// Each instruction starts with a one-byte opcode followed by operand
// bytes; lengths range from 1 byte (nop, ret, trap, halt, throw) to
// 10 bytes (movimm, loadidx). Like real x86-64, the ISA offers two direct
// branch encodings: a 2-byte short form with a ±128-byte range and a
// 5-byte near form with a ±2GB range — the property E9Patch-style
// rewriters and our trampoline placement both revolve around. All
// PC-relative displacements are encoded relative to the start address of
// the instruction.
type x64Encoding struct{}

// X64 opcode bytes. Values mirror familiar x86 opcodes where one exists
// (0x90 nop, 0xC3 ret, 0xCC int3, 0xE8 call, 0xE9/0xEB jmp, 0xF4 hlt).
const (
	xopMovImm     = 0x01
	xopMovReg     = 0x02
	xopALU        = 0x03
	xopALUImm     = 0x04
	xopLoad       = 0x05
	xopStore      = 0x06
	xopLoadIdx    = 0x07
	xopLoadS      = 0x15
	xopLoadIdxS   = 0x17
	xopLoadPCS    = 0x19
	xopLea        = 0x08
	xopLoadPC     = 0x09
	xopSyscall    = 0x0A
	xopThrow      = 0x0B
	xopCallIndMem = 0x0C
	xopBranchCond = 0x0F
	xopMark       = 0x1A
	xopNop        = 0x90
	xopRet        = 0xC3
	xopTrap       = 0xCC
	xopCall       = 0xE8
	xopBranchNear = 0xE9
	xopBranchShrt = 0xEB
	xopHalt       = 0xF4
	xopCallInd    = 0xFD
	xopJumpInd    = 0xFE
)

// Arch implements Encoding.
func (x64Encoding) Arch() Arch { return X64 }

// MinLen implements Encoding.
func (x64Encoding) MinLen() int { return 1 }

// MaxLen implements Encoding.
func (x64Encoding) MaxLen() int { return 10 }

func put32(b []byte, v int64) { binary.LittleEndian.PutUint32(b, uint32(v)) }

// Encode implements Encoding.
func (e x64Encoding) Encode(i Instr) ([]byte, error) {
	switch i.Kind {
	case Nop:
		return []byte{xopNop}, nil
	case Ret:
		return []byte{xopRet}, nil
	case Trap:
		return []byte{xopTrap}, nil
	case Halt:
		return []byte{xopHalt}, nil
	case Throw:
		return []byte{xopThrow}, nil
	case Mark:
		return []byte{xopMark}, nil
	case Syscall:
		if i.Imm < 0 || i.Imm > 255 {
			return nil, rangeError(i, "syscall number", i.Imm)
		}
		return []byte{xopSyscall, byte(i.Imm)}, nil
	case MovImm:
		b := make([]byte, 10)
		b[0], b[1] = xopMovImm, byte(i.Rd)
		binary.LittleEndian.PutUint64(b[2:], uint64(i.Imm))
		return b, nil
	case MovReg:
		return []byte{xopMovReg, byte(i.Rd), byte(i.Rs1)}, nil
	case ALU:
		return []byte{xopALU, byte(i.Op), byte(i.Rd), byte(i.Rs1), byte(i.Rs2)}, nil
	case ALUImm:
		if !fitsSigned(i.Imm, 32) {
			return nil, rangeError(i, "immediate", i.Imm)
		}
		b := make([]byte, 8)
		b[0], b[1], b[2], b[3] = xopALUImm, byte(i.Op), byte(i.Rd), byte(i.Rs1)
		put32(b[4:], i.Imm)
		return b, nil
	case Load:
		if !fitsSigned(i.Imm, 32) {
			return nil, rangeError(i, "displacement", i.Imm)
		}
		b := make([]byte, 8)
		op := byte(xopLoad)
		if i.Signed {
			op = xopLoadS
		}
		b[0], b[1], b[2], b[3] = op, byte(i.Rd), byte(i.Rs1), i.Size
		put32(b[4:], i.Imm)
		return b, nil
	case Store:
		if !fitsSigned(i.Imm, 32) {
			return nil, rangeError(i, "displacement", i.Imm)
		}
		b := make([]byte, 8)
		b[0], b[1], b[2], b[3] = xopStore, byte(i.Rs2), byte(i.Rs1), i.Size
		put32(b[4:], i.Imm)
		return b, nil
	case LoadIdx:
		if !fitsSigned(i.Imm, 32) {
			return nil, rangeError(i, "displacement", i.Imm)
		}
		b := make([]byte, 10)
		op := byte(xopLoadIdx)
		if i.Signed {
			op = xopLoadIdxS
		}
		b[0], b[1], b[2], b[3], b[4], b[5] = op, byte(i.Rd), byte(i.Rs1), byte(i.Rs2), i.Size, i.Scale
		put32(b[6:], i.Imm)
		return b, nil
	case Lea:
		if !fitsSigned(i.Imm, 32) {
			return nil, rangeError(i, "pc-relative offset", i.Imm)
		}
		b := make([]byte, 6)
		b[0], b[1] = xopLea, byte(i.Rd)
		put32(b[2:], i.Imm)
		return b, nil
	case LoadPC:
		if !fitsSigned(i.Imm, 32) {
			return nil, rangeError(i, "pc-relative offset", i.Imm)
		}
		b := make([]byte, 7)
		op := byte(xopLoadPC)
		if i.Signed {
			op = xopLoadPCS
		}
		b[0], b[1], b[2] = op, byte(i.Rd), i.Size
		put32(b[3:], i.Imm)
		return b, nil
	case Branch:
		if i.Short {
			if !fitsSigned(i.Imm, 8) {
				return nil, rangeError(i, "short branch offset", i.Imm)
			}
			return []byte{xopBranchShrt, byte(int8(i.Imm))}, nil
		}
		if !fitsSigned(i.Imm, 32) {
			return nil, rangeError(i, "branch offset", i.Imm)
		}
		b := make([]byte, 5)
		b[0] = xopBranchNear
		put32(b[1:], i.Imm)
		return b, nil
	case BranchCond:
		if !fitsSigned(i.Imm, 32) {
			return nil, rangeError(i, "branch offset", i.Imm)
		}
		b := make([]byte, 7)
		b[0], b[1], b[2] = xopBranchCond, byte(i.Cond), byte(i.Rs1)
		put32(b[3:], i.Imm)
		return b, nil
	case Call:
		if !fitsSigned(i.Imm, 32) {
			return nil, rangeError(i, "call offset", i.Imm)
		}
		b := make([]byte, 5)
		b[0] = xopCall
		put32(b[1:], i.Imm)
		return b, nil
	case CallInd:
		return []byte{xopCallInd, byte(i.Rs1)}, nil
	case JumpInd:
		return []byte{xopJumpInd, byte(i.Rs1)}, nil
	case CallIndMem:
		if !fitsSigned(i.Imm, 32) {
			return nil, rangeError(i, "displacement", i.Imm)
		}
		b := make([]byte, 6)
		b[0], b[1] = xopCallIndMem, byte(i.Rs1)
		put32(b[2:], i.Imm)
		return b, nil
	case Illegal:
		return []byte{0xFF}, nil
	default:
		return nil, rangeError(i, "unsupported kind on x64", int64(i.Kind))
	}
}

// Decode implements Encoding.
func (e x64Encoding) Decode(b []byte, addr uint64) (Instr, error) {
	if len(b) == 0 {
		return Instr{}, ErrShortBuffer
	}
	ill := Instr{Kind: Illegal, Addr: addr, EncLen: 1}
	need := func(n int) bool { return len(b) >= n }
	get32 := func(off int) int64 { return int64(int32(binary.LittleEndian.Uint32(b[off:]))) }
	var i Instr
	i.Addr = addr
	switch b[0] {
	case xopNop:
		i.Kind, i.EncLen = Nop, 1
	case xopRet:
		i.Kind, i.EncLen = Ret, 1
	case xopTrap:
		i.Kind, i.EncLen = Trap, 1
	case xopHalt:
		i.Kind, i.EncLen = Halt, 1
	case xopThrow:
		i.Kind, i.EncLen = Throw, 1
	case xopMark:
		i.Kind, i.EncLen = Mark, 1
	case xopSyscall:
		if !need(2) {
			return ill, nil
		}
		i.Kind, i.Imm, i.EncLen = Syscall, int64(b[1]), 2
	case xopMovImm:
		if !need(10) {
			return ill, nil
		}
		i.Kind, i.Rd, i.EncLen = MovImm, Reg(b[1]), 10
		i.Imm = int64(binary.LittleEndian.Uint64(b[2:]))
	case xopMovReg:
		if !need(3) {
			return ill, nil
		}
		i.Kind, i.Rd, i.Rs1, i.EncLen = MovReg, Reg(b[1]), Reg(b[2]), 3
	case xopALU:
		if !need(5) {
			return ill, nil
		}
		i.Kind, i.Op, i.Rd, i.Rs1, i.Rs2, i.EncLen = ALU, ALUOp(b[1]), Reg(b[2]), Reg(b[3]), Reg(b[4]), 5
	case xopALUImm:
		if !need(8) {
			return ill, nil
		}
		i.Kind, i.Op, i.Rd, i.Rs1, i.Imm, i.EncLen = ALUImm, ALUOp(b[1]), Reg(b[2]), Reg(b[3]), get32(4), 8
	case xopLoad, xopLoadS:
		if !need(8) {
			return ill, nil
		}
		i.Kind, i.Rd, i.Rs1, i.Size, i.Imm, i.EncLen = Load, Reg(b[1]), Reg(b[2]), b[3], get32(4), 8
		i.Signed = b[0] == xopLoadS
	case xopStore:
		if !need(8) {
			return ill, nil
		}
		i.Kind, i.Rs2, i.Rs1, i.Size, i.Imm, i.EncLen = Store, Reg(b[1]), Reg(b[2]), b[3], get32(4), 8
	case xopLoadIdx, xopLoadIdxS:
		if !need(10) {
			return ill, nil
		}
		i.Kind, i.Rd, i.Rs1, i.Rs2, i.Size, i.Scale, i.Imm, i.EncLen =
			LoadIdx, Reg(b[1]), Reg(b[2]), Reg(b[3]), b[4], b[5], get32(6), 10
		i.Signed = b[0] == xopLoadIdxS
	case xopLea:
		if !need(6) {
			return ill, nil
		}
		i.Kind, i.Rd, i.Imm, i.EncLen = Lea, Reg(b[1]), get32(2), 6
	case xopLoadPC, xopLoadPCS:
		if !need(7) {
			return ill, nil
		}
		i.Kind, i.Rd, i.Size, i.Imm, i.EncLen = LoadPC, Reg(b[1]), b[2], get32(3), 7
		i.Signed = b[0] == xopLoadPCS
	case xopBranchNear:
		if !need(5) {
			return ill, nil
		}
		i.Kind, i.Imm, i.EncLen = Branch, get32(1), 5
	case xopBranchShrt:
		if !need(2) {
			return ill, nil
		}
		i.Kind, i.Imm, i.Short, i.EncLen = Branch, int64(int8(b[1])), true, 2
	case xopBranchCond:
		if !need(7) {
			return ill, nil
		}
		i.Kind, i.Cond, i.Rs1, i.Imm, i.EncLen = BranchCond, Cond(b[1]), Reg(b[2]), get32(3), 7
	case xopCall:
		if !need(5) {
			return ill, nil
		}
		i.Kind, i.Imm, i.EncLen = Call, get32(1), 5
	case xopCallInd:
		if !need(2) {
			return ill, nil
		}
		i.Kind, i.Rs1, i.EncLen = CallInd, Reg(b[1]), 2
	case xopCallIndMem:
		if !need(6) {
			return ill, nil
		}
		i.Kind, i.Rs1, i.Imm, i.EncLen = CallIndMem, Reg(b[1]), get32(2), 6
	case xopJumpInd:
		if !need(2) {
			return ill, nil
		}
		i.Kind, i.Rs1, i.EncLen = JumpInd, Reg(b[1]), 2
	default:
		return ill, nil
	}
	if !validOperands(i) {
		return ill, nil
	}
	return i, nil
}

// validOperands rejects decoded instructions whose register or field
// values are architecturally meaningless, so random data mostly decodes
// to Illegal rather than to plausible instructions.
func validOperands(i Instr) bool {
	okReg := func(r Reg) bool { return r.Valid() }
	switch i.Kind {
	case MovImm, Lea, LeaHi:
		return okReg(i.Rd)
	case MovImm16, MovK16:
		return okReg(i.Rd) && i.Shift < 4
	case MovReg:
		return okReg(i.Rd) && okReg(i.Rs1)
	case ALU:
		return i.Op <= Shr && okReg(i.Rd) && okReg(i.Rs1) && okReg(i.Rs2)
	case ALUImm:
		return i.Op <= Shr && okReg(i.Rd) && okReg(i.Rs1)
	case AddIS, AddImm16:
		return okReg(i.Rd) && okReg(i.Rs1)
	case Load, LoadPC:
		return okReg(i.Rd) && okSize(i.Size) && (i.Kind == LoadPC || okReg(i.Rs1))
	case Store:
		return okReg(i.Rs1) && okReg(i.Rs2) && okSize(i.Size)
	case LoadIdx:
		return okReg(i.Rd) && okReg(i.Rs1) && okReg(i.Rs2) && okSize(i.Size) && okSize(i.Scale)
	case BranchCond:
		return i.Cond <= LE && okReg(i.Rs1)
	case CallInd, JumpInd, CallIndMem:
		return okReg(i.Rs1)
	default:
		return true
	}
}

func okSize(s uint8) bool { return s == 1 || s == 2 || s == 4 || s == 8 }
