package arch

import "encoding/binary"

// fixedEncoding implements the 4-byte fixed-width encodings shared by PPC
// and A64. Every instruction is a little-endian uint32 whose top 6 bits
// select the opcode; the two architectures differ only in the width of
// their branch displacement fields, which yields the paper's ±32MB (PPC)
// versus ±128MB (A64) direct branch ranges, and ±32KB versus ±512KB
// conditional branch ranges. Branch displacements are stored in words
// (bytes/4) relative to the start of the instruction.
type fixedEncoding struct {
	arch Arch
}

// Fixed-width opcodes (6-bit values).
const (
	fopNop uint32 = iota
	fopMovImm16
	fopMovK16
	fopMovReg
	fopALU
	fopALUImm
	fopAddIS
	fopAddImm16
	fopLoad
	fopStore
	fopLoadIdx
	fopLea
	fopLeaHi
	fopLoadPC
	fopBranch
	fopBranchCond
	fopCall
	fopCallInd
	fopCallIndMem
	fopJumpInd
	fopRet
	fopTrap
	fopHalt
	fopSyscall
	fopThrow
	fopLoadS
	fopLoadIdxS
	fopLoadPCS
	fopMark
)

// branchBits returns the displacement field width (in words) of the
// unconditional branch and call instructions.
func (e fixedEncoding) branchBits() uint {
	if e.arch == PPC {
		return 24 // ±8M words = ±32MB
	}
	return 26 // ±32M words = ±128MB
}

// condBits returns the displacement field width of conditional branches.
func (e fixedEncoding) condBits() uint {
	if e.arch == PPC {
		return 14 // ±8K words = ±32KB
	}
	return 18 // ±128K words = ±512KB
}

// Arch implements Encoding.
func (e fixedEncoding) Arch() Arch { return e.arch }

// MinLen implements Encoding.
func (fixedEncoding) MinLen() int { return 4 }

// MaxLen implements Encoding.
func (fixedEncoding) MaxLen() int { return 4 }

// bitWriter packs fields into the low 26 bits of a word, consuming from
// the most significant operand bit downward.
type bitWriter struct {
	v   uint32
	pos uint
}

func (w *bitWriter) put(val uint32, width uint) {
	w.pos -= width
	w.v |= (val & (1<<width - 1)) << w.pos
}

// bitReader mirrors bitWriter for decoding.
type bitReader struct {
	v   uint32
	pos uint
}

func (r *bitReader) get(width uint) uint32 {
	r.pos -= width
	return (r.v >> r.pos) & (1<<width - 1)
}

func (r *bitReader) getS(width uint) int64 {
	u := uint64(r.get(width))
	shift := 64 - width
	return int64(u<<shift) >> shift
}

// wordDisp validates and converts a byte displacement to a word
// displacement that fits in a signed field of the given width.
func wordDisp(i Instr, disp int64, bits uint) (uint32, error) {
	if disp&3 != 0 {
		return 0, rangeError(i, "unaligned branch displacement", disp)
	}
	w := disp >> 2
	if !fitsSigned(w, bits) {
		return 0, rangeError(i, "branch displacement", disp)
	}
	return uint32(w), nil
}

// Encode implements Encoding.
func (e fixedEncoding) Encode(i Instr) ([]byte, error) {
	w := bitWriter{pos: 26}
	var op uint32
	switch i.Kind {
	case Nop:
		op = fopNop
	case Ret:
		op = fopRet
	case Trap:
		op = fopTrap
	case Halt:
		op = fopHalt
	case Throw:
		op = fopThrow
	case Mark:
		op = fopMark
	case Syscall:
		if i.Imm < 0 || i.Imm > 255 {
			return nil, rangeError(i, "syscall number", i.Imm)
		}
		op = fopSyscall
		w.put(uint32(i.Imm), 8)
	case MovImm16:
		if i.Imm < 0 || i.Imm > 0xFFFF || i.Shift > 3 {
			return nil, rangeError(i, "movz immediate", i.Imm)
		}
		op = fopMovImm16
		w.put(uint32(i.Rd), 5)
		w.put(uint32(i.Shift), 2)
		w.put(uint32(i.Imm), 16)
	case MovK16:
		if i.Imm < 0 || i.Imm > 0xFFFF || i.Shift > 3 {
			return nil, rangeError(i, "movk immediate", i.Imm)
		}
		op = fopMovK16
		w.put(uint32(i.Rd), 5)
		w.put(uint32(i.Shift), 2)
		w.put(uint32(i.Imm), 16)
	case MovImm:
		// Single-instruction 64-bit immediates do not exist on the
		// fixed-width ISAs; the assembler must synthesise them.
		if i.Imm < 0 || i.Imm > 0xFFFF {
			return nil, rangeError(i, "movimm immediate (use movz/movk pairs)", i.Imm)
		}
		op = fopMovImm16
		w.put(uint32(i.Rd), 5)
		w.put(0, 2)
		w.put(uint32(i.Imm), 16)
	case MovReg:
		op = fopMovReg
		w.put(uint32(i.Rd), 5)
		w.put(uint32(i.Rs1), 5)
	case ALU:
		op = fopALU
		w.put(uint32(i.Op), 4)
		w.put(uint32(i.Rd), 5)
		w.put(uint32(i.Rs1), 5)
		w.put(uint32(i.Rs2), 5)
	case ALUImm:
		if !fitsSigned(i.Imm, 12) {
			return nil, rangeError(i, "immediate", i.Imm)
		}
		op = fopALUImm
		w.put(uint32(i.Op), 4)
		w.put(uint32(i.Rd), 5)
		w.put(uint32(i.Rs1), 5)
		w.put(uint32(i.Imm), 12)
	case AddIS:
		if !fitsSigned(i.Imm, 16) {
			return nil, rangeError(i, "addis immediate", i.Imm)
		}
		op = fopAddIS
		w.put(uint32(i.Rd), 5)
		w.put(uint32(i.Rs1), 5)
		w.put(uint32(i.Imm), 16)
	case AddImm16:
		if !fitsSigned(i.Imm, 16) {
			return nil, rangeError(i, "addi immediate", i.Imm)
		}
		op = fopAddImm16
		w.put(uint32(i.Rd), 5)
		w.put(uint32(i.Rs1), 5)
		w.put(uint32(i.Imm), 16)
	case Load, Store:
		if !fitsSigned(i.Imm, 12) {
			return nil, rangeError(i, "displacement", i.Imm)
		}
		r := i.Rd
		if i.Kind == Store {
			op = fopStore
			r = i.Rs2
		} else if i.Signed {
			op = fopLoadS
		} else {
			op = fopLoad
		}
		w.put(uint32(r), 5)
		w.put(uint32(i.Rs1), 5)
		w.put(uint32(sizeCode(i.Size)), 2)
		w.put(uint32(i.Imm), 12)
	case LoadIdx:
		if i.Imm != 0 {
			return nil, rangeError(i, "loadidx displacement (must be 0)", i.Imm)
		}
		op = fopLoadIdx
		if i.Signed {
			op = fopLoadIdxS
		}
		w.put(uint32(i.Rd), 5)
		w.put(uint32(i.Rs1), 5)
		w.put(uint32(i.Rs2), 5)
		w.put(uint32(sizeCode(i.Size)), 2)
		w.put(uint32(sizeCode(i.Scale)), 2)
	case Lea:
		if !fitsSigned(i.Imm, 21) {
			return nil, rangeError(i, "adr offset", i.Imm)
		}
		op = fopLea
		w.put(uint32(i.Rd), 5)
		w.put(uint32(i.Imm), 21)
	case LeaHi:
		if i.Imm&0xFFF != 0 {
			return nil, rangeError(i, "adrp offset (must be page aligned)", i.Imm)
		}
		pages := i.Imm >> 12
		if !fitsSigned(pages, 21) {
			return nil, rangeError(i, "adrp offset", i.Imm)
		}
		op = fopLeaHi
		w.put(uint32(i.Rd), 5)
		w.put(uint32(pages), 21)
	case LoadPC:
		if !fitsSigned(i.Imm, 19) {
			return nil, rangeError(i, "pc-relative offset", i.Imm)
		}
		op = fopLoadPC
		if i.Signed {
			op = fopLoadPCS
		}
		w.put(uint32(i.Rd), 5)
		w.put(uint32(sizeCode(i.Size)), 2)
		w.put(uint32(i.Imm), 19)
	case Branch, Call:
		d, err := wordDisp(i, i.Imm, e.branchBits())
		if err != nil {
			return nil, err
		}
		op = fopBranch
		if i.Kind == Call {
			op = fopCall
		}
		w.put(d, e.branchBits())
	case BranchCond:
		d, err := wordDisp(i, i.Imm, e.condBits())
		if err != nil {
			return nil, err
		}
		op = fopBranchCond
		w.put(uint32(i.Cond), 3)
		w.put(uint32(i.Rs1), 5)
		w.put(d, e.condBits())
	case CallInd:
		op = fopCallInd
		w.put(uint32(i.Rs1), 5)
	case CallIndMem:
		if !fitsSigned(i.Imm, 12) {
			return nil, rangeError(i, "displacement", i.Imm)
		}
		op = fopCallIndMem
		w.put(uint32(i.Rs1), 5)
		w.put(uint32(i.Imm), 12)
	case JumpInd:
		op = fopJumpInd
		w.put(uint32(i.Rs1), 5)
	case Illegal:
		return []byte{0xFF, 0xFF, 0xFF, 0xFF}, nil
	default:
		return nil, rangeError(i, "unsupported kind on fixed-width ISA", int64(i.Kind))
	}
	out := make([]byte, 4)
	binary.LittleEndian.PutUint32(out, op<<26|w.v)
	return out, nil
}

// sizeCode maps an access size in bytes to its 2-bit encoding.
func sizeCode(s uint8) uint8 {
	switch s {
	case 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	default:
		return 3
	}
}

// sizeFromCode is the inverse of sizeCode.
func sizeFromCode(c uint32) uint8 { return 1 << c }

// Decode implements Encoding.
func (e fixedEncoding) Decode(b []byte, addr uint64) (Instr, error) {
	if len(b) < 4 {
		if len(b) == 0 {
			return Instr{}, ErrShortBuffer
		}
		return Instr{Kind: Illegal, Addr: addr, EncLen: len(b)}, nil
	}
	word := binary.LittleEndian.Uint32(b)
	r := bitReader{v: word, pos: 26}
	i := Instr{Addr: addr, EncLen: 4}
	switch word >> 26 {
	case fopNop:
		i.Kind = Nop
		if word != 0 {
			i.Kind = Illegal // nop with garbage operand bits
		}
	case fopRet:
		i.Kind = Ret
	case fopTrap:
		i.Kind = Trap
	case fopHalt:
		i.Kind = Halt
	case fopThrow:
		i.Kind = Throw
	case fopMark:
		i.Kind = Mark
		if word != fopMark<<26 {
			i.Kind = Illegal // mark with garbage operand bits
		}
	case fopSyscall:
		i.Kind = Syscall
		i.Imm = int64(r.get(8))
	case fopMovImm16:
		i.Kind = MovImm16
		i.Rd = Reg(r.get(5))
		i.Shift = uint8(r.get(2))
		i.Imm = int64(r.get(16))
	case fopMovK16:
		i.Kind = MovK16
		i.Rd = Reg(r.get(5))
		i.Shift = uint8(r.get(2))
		i.Imm = int64(r.get(16))
	case fopMovReg:
		i.Kind = MovReg
		i.Rd = Reg(r.get(5))
		i.Rs1 = Reg(r.get(5))
	case fopALU:
		i.Kind = ALU
		i.Op = ALUOp(r.get(4))
		i.Rd = Reg(r.get(5))
		i.Rs1 = Reg(r.get(5))
		i.Rs2 = Reg(r.get(5))
	case fopALUImm:
		i.Kind = ALUImm
		i.Op = ALUOp(r.get(4))
		i.Rd = Reg(r.get(5))
		i.Rs1 = Reg(r.get(5))
		i.Imm = r.getS(12)
	case fopAddIS:
		i.Kind = AddIS
		i.Rd = Reg(r.get(5))
		i.Rs1 = Reg(r.get(5))
		i.Imm = r.getS(16)
	case fopAddImm16:
		i.Kind = AddImm16
		i.Rd = Reg(r.get(5))
		i.Rs1 = Reg(r.get(5))
		i.Imm = r.getS(16)
	case fopLoad, fopLoadS:
		i.Kind = Load
		i.Signed = word>>26 == fopLoadS
		i.Rd = Reg(r.get(5))
		i.Rs1 = Reg(r.get(5))
		i.Size = sizeFromCode(r.get(2))
		i.Imm = r.getS(12)
	case fopStore:
		i.Kind = Store
		i.Rs2 = Reg(r.get(5))
		i.Rs1 = Reg(r.get(5))
		i.Size = sizeFromCode(r.get(2))
		i.Imm = r.getS(12)
	case fopLoadIdx, fopLoadIdxS:
		i.Kind = LoadIdx
		i.Signed = word>>26 == fopLoadIdxS
		i.Rd = Reg(r.get(5))
		i.Rs1 = Reg(r.get(5))
		i.Rs2 = Reg(r.get(5))
		i.Size = sizeFromCode(r.get(2))
		i.Scale = sizeFromCode(r.get(2))
	case fopLea:
		i.Kind = Lea
		i.Rd = Reg(r.get(5))
		i.Imm = r.getS(21)
	case fopLeaHi:
		i.Kind = LeaHi
		i.Rd = Reg(r.get(5))
		i.Imm = r.getS(21) << 12
	case fopLoadPC, fopLoadPCS:
		i.Kind = LoadPC
		i.Signed = word>>26 == fopLoadPCS
		i.Rd = Reg(r.get(5))
		i.Size = sizeFromCode(r.get(2))
		i.Imm = r.getS(19)
	case fopBranch:
		i.Kind = Branch
		i.Imm = r.getS(e.branchBits()) << 2
	case fopCall:
		i.Kind = Call
		i.Imm = r.getS(e.branchBits()) << 2
	case fopBranchCond:
		i.Kind = BranchCond
		i.Cond = Cond(r.get(3))
		i.Rs1 = Reg(r.get(5))
		i.Imm = r.getS(e.condBits()) << 2
	case fopCallInd:
		i.Kind = CallInd
		i.Rs1 = Reg(r.get(5))
	case fopCallIndMem:
		i.Kind = CallIndMem
		i.Rs1 = Reg(r.get(5))
		i.Imm = r.getS(12)
	case fopJumpInd:
		i.Kind = JumpInd
		i.Rs1 = Reg(r.get(5))
	default:
		i.Kind = Illegal
	}
	if i.Kind != Illegal && !validOperands(i) {
		i = Instr{Kind: Illegal, Addr: addr, EncLen: 4}
	}
	return i, nil
}
