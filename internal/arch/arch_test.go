package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleInstrs returns a representative instruction of every kind valid on
// the given architecture.
func sampleInstrs(a Arch) []Instr {
	common := []Instr{
		{Kind: Nop},
		{Kind: MovReg, Rd: R3, Rs1: R7},
		{Kind: ALU, Op: Add, Rd: R1, Rs1: R2, Rs2: R3},
		{Kind: ALU, Op: Xor, Rd: R9, Rs1: R9, Rs2: R9},
		{Kind: ALUImm, Op: Sub, Rd: SP, Rs1: SP, Imm: 64},
		{Kind: ALUImm, Op: Shl, Rd: R4, Rs1: R4, Imm: 3},
		{Kind: Load, Rd: R1, Rs1: SP, Size: 8, Imm: 16},
		{Kind: Load, Rd: R2, Rs1: R3, Size: 1, Imm: -4},
		{Kind: Store, Rs2: R1, Rs1: SP, Size: 8, Imm: -8},
		{Kind: LoadIdx, Rd: R1, Rs1: R2, Rs2: R3, Size: 4, Scale: 4},
		{Kind: LoadIdx, Rd: R1, Rs1: R2, Rs2: R3, Size: 1, Scale: 1},
		{Kind: Lea, Rd: R5, Imm: 4096},
		{Kind: Branch, Imm: 64},
		{Kind: Branch, Imm: -128},
		{Kind: BranchCond, Cond: NE, Rs1: R1, Imm: 32},
		{Kind: BranchCond, Cond: LE, Rs1: R2, Imm: -64},
		{Kind: Call, Imm: 1024},
		{Kind: CallInd, Rs1: R8},
		{Kind: CallIndMem, Rs1: SP, Imm: 8},
		{Kind: JumpInd, Rs1: R9},
		{Kind: Ret},
		{Kind: Trap},
		{Kind: Halt},
		{Kind: Syscall, Imm: 3},
		{Kind: Throw},
	}
	if a == X64 {
		return append(common,
			Instr{Kind: MovImm, Rd: R1, Imm: -1},
			Instr{Kind: MovImm, Rd: R2, Imm: 0x1122334455667788},
			Instr{Kind: LoadPC, Rd: R3, Size: 8, Imm: 0x1000},
			Instr{Kind: Branch, Imm: 100, Short: true},
			Instr{Kind: Branch, Imm: -100, Short: true},
		)
	}
	return append(common,
		Instr{Kind: MovImm16, Rd: R1, Imm: 0xBEEF, Shift: 1},
		Instr{Kind: MovK16, Rd: R1, Imm: 0xDEAD, Shift: 3},
		Instr{Kind: AddIS, Rd: R4, Rs1: TOCReg, Imm: -32768},
		Instr{Kind: AddImm16, Rd: R4, Rs1: R4, Imm: 32767},
		Instr{Kind: LeaHi, Rd: R5, Imm: -(int64(1) << 20 << 12)},
		Instr{Kind: LoadPC, Rd: R3, Size: 4, Imm: 0x2000},
		Instr{Kind: MovReg, Rd: TAR, Rs1: R6},
		Instr{Kind: JumpInd, Rs1: TAR},
	)
}

// normalize clears fields the decoder cannot recover exactly but that do
// not affect semantics, so round-trip comparison is meaningful.
func normalize(i Instr, a Arch) Instr {
	i.Addr = 0
	i.EncLen = 0
	if a != X64 {
		i.Short = false
		if i.Kind == MovImm {
			i.Kind = MovImm16 // small movimm aliases to movz
		}
	}
	return i
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, a := range All() {
		enc := ForArch(a)
		for _, ins := range sampleInstrs(a) {
			b, err := enc.Encode(ins)
			if err != nil {
				t.Fatalf("%s: encode %q: %v", a, ins, err)
			}
			if len(b) < enc.MinLen() || len(b) > enc.MaxLen() {
				t.Fatalf("%s: %q encoded to %d bytes, outside [%d,%d]", a, ins, len(b), enc.MinLen(), enc.MaxLen())
			}
			got, err := enc.Decode(b, 0)
			if err != nil {
				t.Fatalf("%s: decode %q: %v", a, ins, err)
			}
			if got.EncLen != len(b) {
				t.Errorf("%s: %q: EncLen = %d, want %d", a, ins, got.EncLen, len(b))
			}
			if normalize(got, a) != normalize(ins, a) {
				t.Errorf("%s: round trip %q -> % x -> %q", a, ins, b, got)
			}
		}
	}
}

func TestFixedWidthAlwaysFourBytes(t *testing.T) {
	for _, a := range []Arch{PPC, A64} {
		enc := ForArch(a)
		for _, ins := range sampleInstrs(a) {
			b, err := enc.Encode(ins)
			if err != nil {
				t.Fatalf("%s: %v", a, err)
			}
			if len(b) != 4 {
				t.Errorf("%s: %q encoded to %d bytes, want 4", a, ins, len(b))
			}
		}
	}
}

func TestDecodeGarbageIsIllegalNotError(t *testing.T) {
	for _, a := range All() {
		enc := ForArch(a)
		got, err := enc.Decode([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 0x1000)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if got.Kind != Illegal {
			t.Errorf("%s: decoded garbage as %q", a, got)
		}
		if got.EncLen < 1 {
			t.Errorf("%s: illegal decode consumed %d bytes", a, got.EncLen)
		}
		if _, err := enc.Decode(nil, 0); err != ErrShortBuffer {
			t.Errorf("%s: empty decode error = %v, want ErrShortBuffer", a, err)
		}
	}
}

func TestBranchRangeLimits(t *testing.T) {
	tests := []struct {
		arch Arch
		kind Kind
		in   int64 // encodable displacement
		out  int64 // just beyond the range
	}{
		{X64, Branch, 1<<31 - 1, 1 << 31},
		{PPC, Branch, (1<<23 - 1) * 4, 1 << 25},
		{A64, Branch, (1<<25 - 1) * 4, 1 << 27},
		{PPC, BranchCond, (1<<13 - 1) * 4, 1 << 15},
		{A64, BranchCond, (1<<17 - 1) * 4, 1 << 19},
	}
	for _, tc := range tests {
		enc := ForArch(tc.arch)
		ins := Instr{Kind: tc.kind, Cond: NE, Rs1: R1, Imm: tc.in}
		if _, err := enc.Encode(ins); err != nil {
			t.Errorf("%s %s: in-range %d rejected: %v", tc.arch, tc.kind, tc.in, err)
		}
		ins.Imm = tc.out
		if _, err := enc.Encode(ins); err == nil {
			t.Errorf("%s %s: out-of-range %d accepted", tc.arch, tc.kind, tc.out)
		}
	}
	if got := DirectBranchRange(PPC); got != (1<<23-1)*4 {
		t.Errorf("DirectBranchRange(PPC) = %d (~%dMB), want ±32MB", got, got>>20)
	}
	if got := DirectBranchRange(A64); got != (1<<25-1)*4 {
		t.Errorf("DirectBranchRange(A64) = %d (~%dMB), want ±128MB", got, got>>20)
	}
	if ShortBranchRange(X64) != 127 {
		t.Errorf("ShortBranchRange(X64) = %d, want 127", ShortBranchRange(X64))
	}
}

func TestUnalignedFixedBranchRejected(t *testing.T) {
	for _, a := range []Arch{PPC, A64} {
		if _, err := ForArch(a).Encode(Instr{Kind: Branch, Imm: 6}); err == nil {
			t.Errorf("%s: unaligned branch displacement accepted", a)
		}
	}
}

func TestTargetAndSetTarget(t *testing.T) {
	i := Instr{Kind: Branch, Addr: 0x1000, Imm: 0x40}
	if tgt, ok := i.Target(); !ok || tgt != 0x1040 {
		t.Errorf("Target = %#x, %v", tgt, ok)
	}
	i.SetTarget(0x2000)
	if tgt, _ := i.Target(); tgt != 0x2000 {
		t.Errorf("after SetTarget, Target = %#x", tgt)
	}
	hi := Instr{Kind: LeaHi, Addr: 0x1234}
	hi.SetTarget(0x9000)
	if tgt, _ := hi.Target(); tgt != 0x9000 {
		t.Errorf("LeaHi SetTarget: Target = %#x", tgt)
	}
	if _, ok := (Instr{Kind: Ret}).Target(); ok {
		t.Error("Ret claims a PC-relative target")
	}
}

func TestCondNegateAndHolds(t *testing.T) {
	vals := []int64{-5, -1, 0, 1, 7}
	for c := EQ; c <= LE; c++ {
		n := c.Negate()
		for _, v := range vals {
			if c.Holds(v) == n.Holds(v) {
				t.Errorf("cond %s and negation %s agree on %d", c, n, v)
			}
		}
		if n.Negate() != c {
			t.Errorf("double negation of %s = %s", c, n.Negate())
		}
	}
}

func TestShortTrampoline(t *testing.T) {
	for _, a := range All() {
		from := uint64(0x10000)
		tr, ok := NewShortTrampoline(a, from, from+uint64(ShortBranchRange(a))&^3)
		if !ok {
			t.Fatalf("%s: in-range short trampoline rejected", a)
		}
		if tr.Len != ShortTrampolineLen(a) {
			t.Errorf("%s: short trampoline len %d, want %d", a, tr.Len, ShortTrampolineLen(a))
		}
		if _, err := tr.Encode(a); err != nil {
			t.Errorf("%s: encode short trampoline: %v", a, err)
		}
		if _, ok := NewShortTrampoline(a, from, from+uint64(ShortBranchRange(a))+8); ok {
			t.Errorf("%s: out-of-range short trampoline accepted", a)
		}
	}
	// Table 2: the x64 short branch is exactly 2 bytes with ±128B range.
	if _, ok := NewShortTrampoline(X64, 0x1000, 0x1000+127); !ok {
		t.Error("x64: +127 byte short branch rejected")
	}
	if _, ok := NewShortTrampoline(X64, 0x1000, 0x1000-128); !ok {
		t.Error("x64: -128 byte short branch rejected")
	}
}

func TestLongTrampolineLengthsMatchTable2(t *testing.T) {
	// x64: 5 bytes. ppc: 4 instructions. a64: 3 instructions.
	toc := uint64(0x10008000)
	tr, ok := NewLongTrampoline(X64, 0x1000, 0x40001000, R6, 0)
	if !ok || tr.Len != 5 || len(tr.Instrs) != 1 {
		t.Errorf("x64 long trampoline: ok=%v len=%d instrs=%d, want 5 bytes / 1 instr", ok, tr.Len, len(tr.Instrs))
	}
	tr, ok = NewLongTrampoline(PPC, 0x1000, 0x40001000, R6, toc)
	if !ok || len(tr.Instrs) != 4 {
		t.Fatalf("ppc long trampoline: ok=%v instrs=%d, want 4 instructions", ok, len(tr.Instrs))
	}
	wantKinds := []Kind{AddIS, AddImm16, MovReg, JumpInd}
	for k, ins := range tr.Instrs {
		if ins.Kind != wantKinds[k] {
			t.Errorf("ppc long trampoline instr %d = %s, want %s", k, ins.Kind, wantKinds[k])
		}
	}
	if tr.Instrs[2].Rd != TAR || tr.Instrs[3].Rs1 != TAR {
		t.Error("ppc long trampoline must branch through the TAR register")
	}
	tr, ok = NewLongTrampoline(A64, 0x1000, 0x40001000, R6, 0)
	if !ok || len(tr.Instrs) != 3 {
		t.Fatalf("a64 long trampoline: ok=%v instrs=%d, want 3 instructions", ok, len(tr.Instrs))
	}
	if tr.Instrs[0].Kind != LeaHi || tr.Instrs[2].Kind != JumpInd {
		t.Error("a64 long trampoline must be adrp/add/br")
	}
}

func TestPPCLongTrampolineComputesTarget(t *testing.T) {
	// Verify the addis/addi decomposition reconstructs the target for
	// positive and negative TOC-relative offsets.
	for _, to := range []uint64{0x10008000 + 0x7FFF0000, 0x10008000 - 0x1234, 0x10008000 + 0x12345} {
		toc := uint64(0x10008000)
		tr, ok := NewLongTrampoline(PPC, 0x1000, to, R7, toc)
		if !ok {
			t.Fatalf("rejected target %#x", to)
		}
		hi, lo := tr.Instrs[0].Imm, tr.Instrs[1].Imm
		got := toc + uint64(hi<<16) + uint64(lo)
		if got != to {
			t.Errorf("toc=%#x hi=%d lo=%d reconstructs %#x, want %#x", toc, hi, lo, got, to)
		}
	}
}

func TestPPCSpillVariantWhenNoScratch(t *testing.T) {
	tr, ok := NewLongTrampoline(PPC, 0x1000, 0x40000000, NoReg, 0x10008000)
	if !ok {
		t.Fatal("spill variant rejected")
	}
	if tr.Class != TrampLongSpill || len(tr.Instrs) != 6 {
		t.Errorf("class=%s instrs=%d, want long+spill with 6 instructions", tr.Class, len(tr.Instrs))
	}
	if tr.Instrs[0].Kind != Store || tr.Instrs[4].Kind != Load {
		t.Error("spill variant must save and restore the scratch register")
	}
}

func TestA64NoScratchFallsToTrap(t *testing.T) {
	if _, ok := NewLongTrampoline(A64, 0x1000, 0x40000000, NoReg, 0); ok {
		t.Error("a64 long trampoline without scratch register must be rejected (trap fallback)")
	}
}

func TestTrapTrampolineAlwaysFits(t *testing.T) {
	for _, a := range All() {
		tr := NewTrapTrampoline(a, 0x1000, 0xFFFFFFFF0000)
		if tr.Len != TrapTrampolineLen(a) {
			t.Errorf("%s: trap trampoline len %d", a, tr.Len)
		}
		b, err := tr.Encode(a)
		if err != nil || len(b) != tr.Len {
			t.Errorf("%s: trap encode: %v", a, err)
		}
	}
}

func TestTrampolinesArePositionIndependent(t *testing.T) {
	// Encoding the same logical trampoline at two different addresses
	// with targets shifted by the same delta yields identical bytes for
	// PC-relative forms (X64, A64) — the property that makes them work
	// in shared libraries and PIEs.
	for _, a := range []Arch{X64, A64} {
		t1, ok1 := NewLongTrampoline(a, 0x10000, 0x5000000, R6, 0)
		t2, ok2 := NewLongTrampoline(a, 0x90000, 0x5080000, R6, 0)
		if !ok1 || !ok2 {
			t.Fatalf("%s: trampolines rejected", a)
		}
		b1, err1 := t1.Encode(a)
		b2, err2 := t2.Encode(a)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: encode: %v %v", a, err1, err2)
		}
		if string(b1) != string(b2) {
			t.Errorf("%s: long trampoline is not position independent: % x vs % x", a, b1, b2)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("Table2 has %d rows, want 6", len(rows))
	}
	perArch := map[Arch]int{}
	for _, r := range rows {
		perArch[r.Arch]++
	}
	for _, a := range All() {
		if perArch[a] != 2 {
			t.Errorf("%s has %d trampoline rows, want 2", a, perArch[a])
		}
	}
}

func TestRegSetQuick(t *testing.T) {
	f := func(rs []uint8) bool {
		var s RegSet
		added := map[Reg]bool{}
		for _, v := range rs {
			r := Reg(v % NumRegs)
			s = s.Add(r)
			added[r] = true
		}
		for r := Reg(0); r < NumRegs; r++ {
			if s.Has(r) != added[r] {
				return false
			}
		}
		return s.Count() == len(added)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegSetOps(t *testing.T) {
	s := AllGP()
	if s.Count() != NumGPRegs {
		t.Errorf("AllGP count = %d", s.Count())
	}
	if s.Has(LR) || s.Has(TAR) {
		t.Error("AllGP contains special registers")
	}
	s = s.Remove(R3)
	if s.Has(R3) || s.Count() != NumGPRegs-1 {
		t.Error("Remove failed")
	}
	u := s.Union(RegSet(0).Add(LR))
	if !u.Has(LR) || !u.Has(R0) {
		t.Error("Union failed")
	}
	if m := u.Minus(AllGP()); !m.Has(LR) || m.Has(R0) {
		t.Error("Minus failed")
	}
}

func TestDefsUses(t *testing.T) {
	tests := []struct {
		a        Arch
		i        Instr
		wantDef  Reg
		wantUse  Reg
		defOther Reg // register that must NOT be defined
	}{
		{X64, Instr{Kind: ALU, Op: Add, Rd: R1, Rs1: R2, Rs2: R3}, R1, R2, R2},
		{X64, Instr{Kind: Store, Rs2: R4, Rs1: SP, Size: 8}, NoReg, R4, R4},
		{PPC, Instr{Kind: Call, Imm: 4}, LR, NoReg, R0},
		{A64, Instr{Kind: Ret}, NoReg, LR, LR},
		{X64, Instr{Kind: Ret}, SP, SP, LR},
		{PPC, Instr{Kind: MovK16, Rd: R5, Imm: 1}, R5, R5, R6},
	}
	for _, tc := range tests {
		defs, uses := tc.i.Defs(tc.a), tc.i.Uses(tc.a)
		if tc.wantDef != NoReg && !defs.Has(tc.wantDef) {
			t.Errorf("%s %q: defs %v missing %s", tc.a, tc.i, defs, tc.wantDef)
		}
		if tc.wantUse != NoReg && !uses.Has(tc.wantUse) {
			t.Errorf("%s %q: uses %v missing %s", tc.a, tc.i, uses, tc.wantUse)
		}
		if tc.defOther != tc.wantDef && defs.Has(tc.defOther) {
			t.Errorf("%s %q: defs %v wrongly contains %s", tc.a, tc.i, defs, tc.defOther)
		}
	}
}

func TestDecodeAllRecoversStream(t *testing.T) {
	for _, a := range All() {
		enc := ForArch(a)
		var stream []byte
		ins := sampleInstrs(a)
		for _, i := range ins {
			b, err := enc.Encode(i)
			if err != nil {
				t.Fatal(err)
			}
			stream = append(stream, b...)
		}
		got := DecodeAll(a, stream, 0x4000)
		if len(got) != len(ins) {
			t.Fatalf("%s: decoded %d instructions, want %d", a, len(got), len(ins))
		}
		addr := uint64(0x4000)
		for k, g := range got {
			if g.Addr != addr {
				t.Errorf("%s: instr %d addr %#x, want %#x", a, k, g.Addr, addr)
			}
			addr += uint64(g.EncLen)
		}
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, a := range All() {
		enc := ForArch(a)
		for trial := 0; trial < 2000; trial++ {
			b := make([]byte, 1+rng.Intn(12))
			rng.Read(b)
			ins, err := enc.Decode(b, 0)
			if err == nil && ins.EncLen < 1 {
				t.Fatalf("%s: decode consumed %d bytes", a, ins.EncLen)
			}
		}
	}
}

func TestInstrPredicates(t *testing.T) {
	if !(Instr{Kind: Call}).IsCall() || !(Instr{Kind: CallIndMem}).IsCall() {
		t.Error("IsCall misses call kinds")
	}
	if (Instr{Kind: Branch}).IsCall() {
		t.Error("Branch is not a call")
	}
	if (Instr{Kind: Branch}).FallsThrough() {
		t.Error("unconditional branch falls through")
	}
	if !(Instr{Kind: BranchCond}).FallsThrough() || !(Instr{Kind: Call}).FallsThrough() {
		t.Error("conditional branch and call must fall through")
	}
	for _, k := range []Kind{Branch, BranchCond, Call, CallInd, CallIndMem, JumpInd, Ret, Halt, Throw, Trap} {
		if !(Instr{Kind: k}).IsControlFlow() {
			t.Errorf("%s not recognised as control flow", k)
		}
	}
	if (Instr{Kind: Load}).IsControlFlow() {
		t.Error("Load is not control flow")
	}
}

func TestArchStringerAndHelpers(t *testing.T) {
	if X64.String() != "x64" || PPC.String() != "ppc" || A64.String() != "a64" {
		t.Error("arch names wrong")
	}
	if X64.FixedWidth() || !PPC.FixedWidth() || !A64.FixedWidth() {
		t.Error("FixedWidth wrong")
	}
	if X64.InstrAlign() != 1 || PPC.InstrAlign() != 4 {
		t.Error("InstrAlign wrong")
	}
	if len(All()) != 3 {
		t.Error("All() must list three architectures")
	}
}

func TestEncodeDecodeQuickRandomOperands(t *testing.T) {
	// Randomised operand fuzzing per kind: any instruction the encoder
	// accepts must decode back to equivalent semantics.
	rng := rand.New(rand.NewSource(42))
	kinds := []Kind{MovReg, ALU, ALUImm, Load, Store, LoadIdx, Lea, Branch, BranchCond, Call, CallInd, CallIndMem, JumpInd, Syscall}
	sizes := []uint8{1, 2, 4, 8}
	for _, a := range All() {
		enc := ForArch(a)
		for trial := 0; trial < 3000; trial++ {
			i := Instr{
				Kind:   kinds[rng.Intn(len(kinds))],
				Op:     ALUOp(rng.Intn(int(Shr) + 1)),
				Cond:   Cond(rng.Intn(int(LE) + 1)),
				Rd:     Reg(rng.Intn(NumGPRegs)),
				Rs1:    Reg(rng.Intn(NumGPRegs)),
				Rs2:    Reg(rng.Intn(NumGPRegs)),
				Size:   sizes[rng.Intn(4)],
				Scale:  sizes[rng.Intn(4)],
				Signed: rng.Intn(2) == 0,
			}
			switch i.Kind {
			case Branch, Call:
				i.Imm = (rng.Int63n(1<<20) - 1<<19) &^ 3
			case BranchCond:
				i.Imm = (rng.Int63n(1<<12) - 1<<11) &^ 3
			case Lea:
				i.Imm = (rng.Int63n(1<<19) - 1<<18) &^ 3
			case ALUImm, Load, Store, CallIndMem:
				i.Imm = rng.Int63n(1<<11) - 1<<10
			case Syscall:
				i.Imm = rng.Int63n(256)
			case LoadIdx:
				i.Imm = 0
			}
			b, err := enc.Encode(i)
			if err != nil {
				continue // out-of-range for this ISA; fine
			}
			got, err := enc.Decode(b, 0)
			if err != nil {
				t.Fatalf("%s: decode of encoded %q failed: %v", a, i, err)
			}
			if got.Kind == Illegal {
				t.Fatalf("%s: encoded %q decodes as illegal (% x)", a, i, b)
			}
			// Compare canonically: re-encoding the decoded instruction
			// must reproduce the same bytes (fields the encoding does
			// not carry, like Cond on a load, are don't-cares).
			b2, err := enc.Encode(got)
			if err != nil {
				t.Fatalf("%s: re-encode %q: %v", a, got, err)
			}
			if string(b2) != string(b) {
				t.Fatalf("%s: %q -> % x -> %q -> % x", a, i, b, got, b2)
			}
		}
	}
}
