package arch

import "fmt"

// fixedEmitter emits laid-out items for the fixed-width ISAs (PPC and
// A64). Every expansion is a whole number of 4-byte words; far transfers
// go through the TAR/ip0 veneer.
type fixedEmitter struct {
	a Arch
}

// Arch identifies the emitter's architecture.
func (e fixedEmitter) Arch() Arch { return e.a }

// DispatchStub returns the variant-dispatch stub sequence.
func (e fixedEmitter) DispatchStub(env EmitEnv, selCell uint64) []Instr {
	return dispatchStub(e.a, env, selCell)
}

// ExpandedLen returns the encoded length of ins under expansion exp.
func (e fixedEmitter) ExpandedLen(env EmitEnv, ins Instr, exp Expand) int {
	base := EncLen(e.a, ins)
	switch exp {
	case ExpandNone:
		return base
	case ExpandCondIsland:
		return base + EncLen(e.a, Instr{Kind: Branch})
	case ExpandLeaPair:
		return EncLen(e.a, Instr{Kind: LeaHi}) + EncLen(e.a, Instr{Kind: ALUImm})
	case ExpandFarBranch, ExpandFarCall:
		return 3 * 4 // adris/adrp + add + indirect branch
	case ExpandEmulCall, ExpandEmulCallInd:
		return 3 * 4
	case ExpandEmulCallFar:
		return 5 * 4
	default:
		return base
	}
}

// Render returns the item's final instruction sequence.
func (e fixedEmitter) Render(env EmitEnv, it EmitItem) ([]Instr, error) {
	switch it.Expand {
	case ExpandNone:
		return renderForm(it), nil
	case ExpandCondIsland:
		return renderCondIsland(e.a, it), nil
	case ExpandLeaPair:
		return renderLeaPair(it), nil
	case ExpandFarBranch, ExpandFarCall:
		return e.veneer(env, it.NewAddr, it.Expand, it.Target)
	case ExpandEmulCall, ExpandEmulCallInd, ExpandEmulCallFar:
		return e.emulatedCall(env, it)
	}
	return nil, fmt.Errorf("arch: %s: unsupported expansion %s at %#x -> %#x (orig %#x)",
		e.a, it.Expand, it.NewAddr, it.Target, it.OrigAddr)
}

// emulatedCall renders the fixed-width call emulation: the ORIGINAL
// return address is materialised into LR, then control branches to the
// target (through a veneer when it is out of direct branch range).
func (e fixedEmitter) emulatedCall(env EmitEnv, it EmitItem) ([]Instr, error) {
	origRA := it.OrigAddr + uint64(it.OrigLen)
	seq := []Instr{
		{Kind: MovImm16, Rd: LR, Imm: int64(origRA & 0xFFFF)},
		{Kind: MovK16, Rd: LR, Imm: int64((origRA >> 16) & 0xFFFF), Shift: 1},
	}
	if env.PIE {
		hi := Instr{Kind: LeaHi, Rd: LR, Addr: it.NewAddr}
		hi.SetTarget(origRA)
		seq = []Instr{
			hi,
			{Kind: AddImm16, Rd: LR, Rs1: LR, Imm: int64(origRA & 0xFFF)},
		}
	}
	if it.Expand == ExpandEmulCallFar {
		tail, err := e.veneer(env, it.NewAddr+8, ExpandFarBranch, it.Target)
		if err != nil {
			return nil, err
		}
		seq = append(seq, tail...)
	} else if it.Ins.Kind == CallInd {
		seq = append(seq, Instr{Kind: JumpInd, Rs1: it.Ins.Rs1})
	} else {
		br := Instr{Kind: Branch, Addr: it.NewAddr + 8}
		br.SetTarget(it.Target)
		seq = append(seq, br)
	}
	addr := it.NewAddr
	for i := range seq {
		seq[i].Addr = addr
		addr += 4
	}
	return seq, nil
}

// veneer forms a far transfer through the TAR register: TOC-relative
// address formation on PPC (addis/addi), page-relative on A64 (the
// ip0-style veneer), then an indirect branch or call.
func (e fixedEmitter) veneer(env EmitEnv, newAddr uint64, exp Expand, t uint64) ([]Instr, error) {
	var seq []Instr
	if e.a == PPC {
		off := int64(t - env.TOCValue)
		lo := int64(int16(off))
		hi := (off - lo) >> 16
		if hi < -(1<<15) || hi >= 1<<15 {
			return nil, fmt.Errorf("arch: %s: %s veneer at %#x: target %#x beyond ±2GB of TOC %#x",
				e.a, exp, newAddr, t, env.TOCValue)
		}
		seq = []Instr{
			{Kind: AddIS, Rd: TAR, Rs1: TOCReg, Imm: hi},
			{Kind: AddImm16, Rd: TAR, Rs1: TAR, Imm: lo},
		}
	} else {
		hi := Instr{Kind: LeaHi, Rd: TAR, Addr: newAddr}
		hi.SetTarget(t)
		seq = []Instr{
			hi,
			{Kind: AddImm16, Rd: TAR, Rs1: TAR, Imm: int64(t & 0xFFF)},
		}
	}
	kind := JumpInd
	if exp == ExpandFarCall {
		kind = CallInd
	}
	seq = append(seq, Instr{Kind: kind, Rs1: TAR})
	addr := newAddr
	for i := range seq {
		seq[i].Addr = addr
		addr += 4
	}
	return seq, nil
}
