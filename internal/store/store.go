// Package store provides the content-addressed artifact store behind
// the rewrite service's warm path. Artifacts are keyed by what produced
// them — for rewrite analyses, the binary's content hash × arch × mode
// × variant — so identical inputs share one cached result regardless of
// which client submitted them.
//
// The store is an in-memory LRU with single-flight population:
// concurrent GetOrCreate calls for one key run the builder exactly once
// and share its result, the idiom internal/workload's generation cache
// established. Optional on-disk persistence (Config.Dir plus a codec)
// spills successfully built artifacts to files named by key, so a
// restarted process warms from disk instead of rebuilding.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Stats is the counter shape every cache in the system reports: the
// analysis and result stores here, and internal/workload's generation
// cache. Hits include waiters that shared a single-flighted build;
// artifacts reloaded from disk count as DiskHits instead, so a restart
// that serves warm-from-disk is distinguishable from true memory hits.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// DiskHits counts artifacts decoded from the persistence directory
	// on a memory miss — disk warms, not memory hits.
	DiskHits uint64
	// PeerHits counts artifacts obtained from a cluster peer instead of
	// recomputed (the peer warm path). They are deliberately distinct
	// from DiskHits: a disk hit is this process's own past work, a peer
	// hit is work shipped over the wire from the owning node.
	PeerHits uint64
	// PersistFailures counts artifacts that could not be spilled to disk.
	// The in-memory copy stays authoritative, so a persist failure does
	// not fail the request — but a store that silently stops persisting
	// serves every restart cold, so the failures must be countable.
	PersistFailures uint64
}

// String renders the counters as a stable one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d disk-hits=%d peer-hits=%d misses=%d evictions=%d persist-failures=%d",
		s.Hits, s.DiskHits, s.PeerHits, s.Misses, s.Evictions, s.PersistFailures)
}

// Hash returns the content address of a byte string: a hex sha256,
// suitable for Key fields and persistence file names.
func Hash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Config configures one store.
type Config[K comparable, V any] struct {
	// MaxEntries bounds the in-memory entry count; 0 means unbounded.
	// Eviction is LRU and never removes an entry still being built.
	MaxEntries int
	// Dir enables on-disk persistence when non-empty: built artifacts
	// are encoded into Dir and decoded back on a memory miss. KeyPath,
	// Encode, and Decode must be set when Dir is.
	Dir     string
	KeyPath func(K) string
	Encode  func(V) ([]byte, error)
	Decode  func([]byte) (V, error)
	// MaxArtifactBytes caps the size of a persisted artifact the store
	// will read back from Dir; 0 selects DefaultMaxArtifactBytes. An
	// oversized file cannot be a sane artifact — it is a corrupted or
	// hostile write into the persistence directory — so it takes the
	// corrupt-artifact path: deleted, and the artifact rebuilt, instead
	// of being slurped into memory whole before Decode can object.
	MaxArtifactBytes int64
	// EvictDisk makes LRU eviction also remove the evicted entry's
	// persisted artifact, bounding the persistence directory to
	// MaxEntries files (cluster nodes want bounded disk; a single
	// restartable daemon usually prefers the default, which keeps
	// evicted artifacts on disk as a warm-restart source).
	//
	// Deletion ordering is the subtle part. All disk I/O for a key
	// happens while that key has an in-memory entry (GetOrCreate inserts
	// the entry slot before loadDisk/saveDisk run), and eviction deletes
	// a file only inside the same critical section that removes the
	// entry — so an eviction can never delete an artifact out from under
	// a concurrent load, and a concurrent Get either sees the entry
	// (pre-evict) or cleanly misses and rebuilds. The one unlockable
	// window — a builder's saveDisk racing an eviction of its own
	// freshly completed entry — is closed on the saveDisk side: after
	// the rename, the builder re-checks under the lock that its entry
	// still exists and deletes the orphan file if it was evicted
	// meanwhile.
	EvictDisk bool
}

// DefaultMaxArtifactBytes bounds persisted-artifact reads when
// Config.MaxArtifactBytes is zero. Real analysis artifacts for the
// largest workloads are tens of megabytes; 1GiB is far above any sane
// artifact while still refusing a runaway or malicious file.
const DefaultMaxArtifactBytes = 1 << 30

// entry is one keyed slot. ready closes when the value (or error) is
// final; val/err must not be read before that.
type entry[V any] struct {
	ready chan struct{}
	val   V
	err   error
	done  bool // guarded by Store.mu; true once ready is closed
	elem  *list.Element
}

// Store is a content-addressed artifact cache safe for concurrent use.
type Store[K comparable, V any] struct {
	cfg Config[K, V]

	mu      sync.Mutex
	entries map[K]*entry[V]
	lru     *list.List // of K; front is most recently used

	hits, misses, evictions, diskHits, persistFailures atomic.Uint64
}

// New creates a store. It panics if Dir is set without a complete codec
// (a configuration bug, not a runtime condition).
func New[K comparable, V any](cfg Config[K, V]) *Store[K, V] {
	if cfg.Dir != "" && (cfg.KeyPath == nil || cfg.Encode == nil || cfg.Decode == nil) {
		panic("store: Dir requires KeyPath, Encode, and Decode")
	}
	if cfg.EvictDisk && cfg.Dir == "" {
		panic("store: EvictDisk requires Dir")
	}
	return &Store[K, V]{cfg: cfg, entries: map[K]*entry[V]{}, lru: list.New()}
}

// GetOrCreate returns the artifact for key, building it with build on a
// miss. Exactly one concurrent caller per key runs build; the others
// block and share the outcome. The hit result reports whether the value
// came from the cache (memory or disk) rather than from this call's
// build. A failed build is not cached: its error goes to every waiter,
// and the next GetOrCreate retries.
func (s *Store[K, V]) GetOrCreate(key K, build func() (V, error)) (V, bool, error) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		<-e.ready
		s.hits.Add(1)
		return e.val, true, e.err
	}
	e := &entry[V]{ready: make(chan struct{})}
	e.elem = s.lru.PushFront(key)
	s.entries[key] = e
	s.mu.Unlock()

	fromDisk := false
	v, err := s.loadDisk(key)
	if err == nil {
		fromDisk = true
	} else {
		v, err = build()
	}
	e.val, e.err = v, err
	close(e.ready)

	s.mu.Lock()
	e.done = true
	if err != nil {
		// Do not cache failures; let later calls retry. A Put may have
		// replaced this entry while the build ran, in which case the
		// replacement — not this failed build — owns the slot.
		s.lru.Remove(e.elem)
		if cur, ok := s.entries[key]; ok && cur == e {
			delete(s.entries, key)
		}
	} else {
		s.evictLocked()
	}
	s.mu.Unlock()

	if err == nil {
		if fromDisk {
			s.diskHits.Add(1)
			return v, true, nil
		}
		if perr := s.saveDisk(key, v); perr != nil {
			s.persistFailures.Add(1)
		}
	}
	s.misses.Add(1)
	return v, false, err
}

// Put inserts or replaces the artifact for key with an already-built
// value, persisting it when the store has a directory. It is the write
// path for mutable artifacts — the batch job store re-Puts a job record
// after every item completion so a restarted daemon resumes from the
// latest persisted state — whereas GetOrCreate only ever populates a
// key once. Readers that were already waiting on an in-flight build for
// the same key still receive that build's result; subsequent reads see
// the Put value. The persist error is reported (and counted) but the
// in-memory copy stays authoritative, exactly as with GetOrCreate.
func (s *Store[K, V]) Put(key K, v V) error {
	e := &entry[V]{ready: make(chan struct{}), val: v, done: true}
	close(e.ready)
	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		// Drop the old entry's LRU element; an in-flight builder's
		// completion path re-checks entry identity before deleting.
		s.lru.Remove(old.elem)
	}
	e.elem = s.lru.PushFront(key)
	s.entries[key] = e
	s.evictLocked()
	s.mu.Unlock()
	if err := s.saveDisk(key, v); err != nil {
		s.persistFailures.Add(1)
		return err
	}
	return nil
}

// Peek returns the artifact for key if present and fully built, with
// no side effects: no LRU promotion, no counter movement, no disk
// probe, and no waiting on an in-flight build. It is the read the
// cluster peer endpoints use — answering another node's warm-path
// probe should not perturb this node's own eviction order or stats.
func (s *Store[K, V]) Peek(key K) (V, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	done := ok && e.done
	s.mu.Unlock()
	if !done || e.err != nil {
		var zero V
		return zero, false
	}
	return e.val, true
}

// Get returns the artifact for key if present and built, without
// populating.
func (s *Store[K, V]) Get(key K) (V, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if !ok {
		var zero V
		return zero, false
	}
	<-e.ready
	if e.err != nil {
		var zero V
		return zero, false
	}
	s.hits.Add(1)
	return e.val, true
}

// evictLocked drops least-recently-used completed entries until the
// store fits MaxEntries. Entries still building are skipped: their
// builder will re-check on completion.
//
// With EvictDisk, the evicted artifact's file is removed inside this
// same critical section. Holding the lock across the unlink is the
// point, not an accident: every load/save for a key runs while that key
// has an in-memory entry, so deleting only entry-less keys under the
// lock means no concurrent Get or GetOrCreate can be mid-read on the
// file being removed — the race window where a reader observes a
// half-evicted artifact never opens.
func (s *Store[K, V]) evictLocked() {
	if s.cfg.MaxEntries <= 0 {
		return
	}
	for el := s.lru.Back(); el != nil && s.lru.Len() > s.cfg.MaxEntries; {
		prev := el.Prev()
		key := el.Value.(K)
		if e := s.entries[key]; e != nil && e.done {
			s.lru.Remove(el)
			delete(s.entries, key)
			s.evictions.Add(1)
			if s.cfg.EvictDisk {
				os.Remove(filepath.Join(s.cfg.Dir, s.cfg.KeyPath(key)))
			}
		}
		el = prev
	}
}

// loadDisk attempts to decode a persisted artifact. A file that exists
// but does not decode is corrupt — a torn write, a disk error, or a
// format change — and is deleted so the artifact rebuilds from scratch
// and re-persists cleanly, instead of failing this and every future
// request for the key. Size is validated before the read: an artifact
// over the configured cap is treated exactly like one that fails
// Decode, without first allocating its full length.
func (s *Store[K, V]) loadDisk(key K) (V, error) {
	var zero V
	if s.cfg.Dir == "" {
		return zero, os.ErrNotExist
	}
	maxBytes := s.cfg.MaxArtifactBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxArtifactBytes
	}
	path := filepath.Join(s.cfg.Dir, s.cfg.KeyPath(key))
	fi, err := os.Stat(path)
	if err != nil {
		return zero, err
	}
	if fi.Size() > maxBytes {
		os.Remove(path)
		return zero, fmt.Errorf("store: corrupt artifact %v (deleted for rebuild): %d bytes exceeds cap %d", key, fi.Size(), maxBytes)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return zero, err
	}
	if int64(len(data)) > maxBytes {
		// The file grew between Stat and read — still over the cap.
		os.Remove(path)
		return zero, fmt.Errorf("store: corrupt artifact %v (deleted for rebuild): %d bytes exceeds cap %d", key, len(data), maxBytes)
	}
	v, err := s.cfg.Decode(data)
	if err != nil {
		os.Remove(path)
		return zero, fmt.Errorf("store: corrupt artifact %v (deleted for rebuild): %w", key, err)
	}
	return v, nil
}

// saveDisk persists an artifact. The memory copy stays authoritative —
// callers must not fail the request on error — but the error is
// reported so failed persists count in Stats instead of vanishing: a
// half-written .tmp left by a failed rename used to be the only trace
// of a dying disk.
func (s *Store[K, V]) saveDisk(key K, v V) error {
	if s.cfg.Dir == "" {
		return nil
	}
	data, err := s.cfg.Encode(v)
	if err != nil {
		return fmt.Errorf("store: encode %v: %w", key, err)
	}
	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("store: persist dir: %w", err)
	}
	path := filepath.Join(s.cfg.Dir, s.cfg.KeyPath(key))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: persist %v: %w", key, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: persist %v: %w", key, err)
	}
	if s.cfg.EvictDisk {
		// The builder's own entry may have been evicted between build
		// completion and this persist (another builder's evictLocked ran
		// in between). Without this re-check the freshly renamed file
		// would outlive its entry forever — the stale-evict leak the
		// EvictDisk ordering contract promises away.
		s.mu.Lock()
		_, present := s.entries[key]
		s.mu.Unlock()
		if !present {
			os.Remove(path)
		}
	}
	return nil
}

// Len returns the number of in-memory entries (including in-flight).
func (s *Store[K, V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (s *Store[K, V]) Stats() Stats {
	return Stats{
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		Evictions:       s.evictions.Load(),
		DiskHits:        s.diskHits.Load(),
		PersistFailures: s.persistFailures.Load(),
	}
}
