package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func byteConfig(max int, dir string) Config[string, []byte] {
	cfg := Config[string, []byte]{MaxEntries: max}
	if dir != "" {
		cfg.Dir = dir
		cfg.KeyPath = func(k string) string { return k }
		cfg.Encode = func(v []byte) ([]byte, error) { return v, nil }
		cfg.Decode = func(d []byte) ([]byte, error) { return d, nil }
	}
	return cfg
}

func TestHitMissCounters(t *testing.T) {
	s := New(byteConfig(0, ""))
	build := func() ([]byte, error) { return []byte("v"), nil }
	if _, hit, err := s.GetOrCreate("a", build); err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v", hit, err)
	}
	if _, hit, err := s.GetOrCreate("a", build); err != nil || !hit {
		t.Fatalf("second get: hit=%v err=%v", hit, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %s", st)
	}
}

func TestSingleFlight(t *testing.T) {
	s := New(byteConfig(0, ""))
	var builds atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := s.GetOrCreate("k", func() ([]byte, error) {
				builds.Add(1)
				return []byte("once"), nil
			})
			if err != nil || string(v) != "once" {
				t.Errorf("got %q err %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times", n)
	}
}

func TestErrorNotCached(t *testing.T) {
	s := New(byteConfig(0, ""))
	boom := errors.New("boom")
	if _, _, err := s.GetOrCreate("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("failed build cached (%d entries)", s.Len())
	}
	v, hit, err := s.GetOrCreate("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(v) != "ok" {
		t.Fatalf("retry: v=%q hit=%v err=%v", v, hit, err)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(byteConfig(2, ""))
	mk := func(k string) { s.GetOrCreate(k, func() ([]byte, error) { return []byte(k), nil }) }
	mk("a")
	mk("b")
	mk("a") // refresh a; b is now LRU
	mk("c") // evicts b
	if _, ok := s.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	s1 := New(byteConfig(0, dir))
	if _, hit, err := s1.GetOrCreate("k", func() ([]byte, error) { return []byte("payload"), nil }); err != nil || hit {
		t.Fatalf("build: hit=%v err=%v", hit, err)
	}

	// A fresh store over the same directory must warm from disk.
	s2 := New(byteConfig(0, dir))
	v, hit, err := s2.GetOrCreate("k", func() ([]byte, error) {
		return nil, errors.New("must not rebuild")
	})
	if err != nil || !hit || string(v) != "payload" {
		t.Fatalf("disk load: v=%q hit=%v err=%v", v, hit, err)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("disk stats = %s", st)
	}
}

func TestOversizedArtifactRebuilds(t *testing.T) {
	dir := t.TempDir()
	cfg := byteConfig(0, dir)
	cfg.MaxArtifactBytes = 64
	// Plant an oversized file where the artifact would persist, as a
	// torn multi-write or a hostile tenant of the directory would.
	if err := os.WriteFile(filepath.Join(dir, "k"), make([]byte, 65), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	v, hit, err := s.GetOrCreate("k", func() ([]byte, error) { return []byte("rebuilt"), nil })
	if err != nil || hit || string(v) != "rebuilt" {
		t.Fatalf("oversized artifact not rebuilt: v=%q hit=%v err=%v", v, hit, err)
	}
	// The corrupt-artifact path re-persists the rebuilt value; the file
	// on disk must now be the sane one, not the oversized original.
	data, err := os.ReadFile(filepath.Join(dir, "k"))
	if err != nil || string(data) != "rebuilt" {
		t.Fatalf("oversized file not replaced: data=%q err=%v", data, err)
	}

	// At exactly the cap, the artifact loads normally.
	at := make([]byte, 64)
	if err := os.WriteFile(filepath.Join(dir, "cap"), at, 0o644); err != nil {
		t.Fatal(err)
	}
	v, hit, err = New(cfg).GetOrCreate("cap", func() ([]byte, error) { return nil, errors.New("must not rebuild") })
	if err != nil || !hit || len(v) != 64 {
		t.Fatalf("at-cap artifact rejected: len=%d hit=%v err=%v", len(v), hit, err)
	}
}

func TestTruncatedArtifactRebuilds(t *testing.T) {
	dir := t.TempDir()
	cfg := byteConfig(0, dir)
	// A decoder with a real format: 8-byte length prefix. Truncation —
	// the torn-write case — fails Decode and must take the
	// delete-and-rebuild path.
	cfg.Encode = func(v []byte) ([]byte, error) {
		out := make([]byte, 8+len(v))
		out[0] = byte(len(v))
		copy(out[8:], v)
		return out, nil
	}
	cfg.Decode = func(d []byte) ([]byte, error) {
		if len(d) < 8 || int(d[0]) != len(d)-8 {
			return nil, errors.New("truncated")
		}
		return d[8:], nil
	}
	if err := os.WriteFile(filepath.Join(dir, "k"), []byte{9, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	v, hit, err := s.GetOrCreate("k", func() ([]byte, error) { return []byte("rebuilt"), nil })
	if err != nil || hit || string(v) != "rebuilt" {
		t.Fatalf("truncated artifact not rebuilt: v=%q hit=%v err=%v", v, hit, err)
	}
}

func TestPersistFailureCountedNotFatal(t *testing.T) {
	// Dir is an existing regular file, so MkdirAll fails on every
	// persist. The request must still be served from memory, and the
	// failure must show up in Stats instead of vanishing.
	dir := t.TempDir()
	notADir := filepath.Join(dir, "occupied")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(byteConfig(0, notADir))
	v, hit, err := s.GetOrCreate("k", func() ([]byte, error) { return []byte("payload"), nil })
	if err != nil || hit || string(v) != "payload" {
		t.Fatalf("build under failing persistence: v=%q hit=%v err=%v", v, hit, err)
	}
	if st := s.Stats(); st.PersistFailures != 1 {
		t.Fatalf("persist failures = %d, want 1 (stats = %s)", st.PersistFailures, st)
	}
	// The memory copy stays authoritative.
	if _, hit, err := s.GetOrCreate("k", func() ([]byte, error) { return nil, errors.New("must not rebuild") }); err != nil || !hit {
		t.Fatalf("memory copy lost after persist failure: hit=%v err=%v", hit, err)
	}
}

func TestPersistRenameFailureCleansTmp(t *testing.T) {
	// The final rename fails because the destination path is occupied by
	// a directory. The half-written .tmp file must be removed — a
	// leaked .tmp used to be the only trace of a failed persist.
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "k"), 0o755); err != nil {
		t.Fatal(err)
	}
	s := New(byteConfig(0, dir))
	if _, _, err := s.GetOrCreate("k", func() ([]byte, error) { return []byte("payload"), nil }); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PersistFailures != 1 {
		t.Fatalf("persist failures = %d, want 1", st.PersistFailures)
	}
	if _, err := os.Stat(filepath.Join(dir, "k.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp file not cleaned up: stat err = %v", err)
	}
}

func TestHashStable(t *testing.T) {
	if Hash([]byte("x")) != Hash([]byte("x")) {
		t.Fatal("hash not deterministic")
	}
	if Hash([]byte("x")) == Hash([]byte("y")) {
		t.Fatal("hash collision on trivial input")
	}
	if len(Hash(nil)) != 64 {
		t.Fatal("hash not hex sha256")
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	s := New(byteConfig(4, ""))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				k := fmt.Sprintf("k%d", (g+i)%6)
				v, _, err := s.GetOrCreate(k, func() ([]byte, error) { return []byte(k), nil })
				if err != nil || string(v) != k {
					t.Errorf("key %s: v=%q err=%v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 4 {
		t.Fatalf("len %d exceeds max", s.Len())
	}
}
