package store

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Multi is the function-keyed second store level behind the delta
// engine: a concurrent LRU map from a content-addressed key to a small
// set of candidate values. Unlike Store, a key does not fully determine
// its value — a function's analysis also depends on bytes outside the
// function (jump-table data, boundary hints), so one content hash can
// legitimately map to different analyses across binary versions. Get
// therefore takes a validation callback and returns the first candidate
// that passes; Put prepends a new candidate, keeping at most maxPerKey.
type Multi[K comparable, V any] struct {
	maxKeys   int
	maxPerKey int

	mu      sync.Mutex
	entries map[K][]V
	lru     *list.List // of K; front is most recently used
	elems   map[K]*list.Element

	hits, misses, evictions, peerHits atomic.Uint64
}

// NewMulti creates a Multi bounding the key count and candidates per
// key. maxKeys <= 0 means unbounded; maxPerKey <= 0 defaults to 2 (the
// common case: the current and the previous binary version).
func NewMulti[K comparable, V any](maxKeys, maxPerKey int) *Multi[K, V] {
	if maxPerKey <= 0 {
		maxPerKey = 2
	}
	return &Multi[K, V]{
		maxKeys:   maxKeys,
		maxPerKey: maxPerKey,
		entries:   map[K][]V{},
		lru:       list.New(),
		elems:     map[K]*list.Element{},
	}
}

// Get returns the first candidate for key accepted by valid (nil valid
// accepts any). The callback runs without the store lock held — it may
// do real work (byte comparisons, boundary queries) — against a copied
// candidate slice, so concurrent Puts and evictions are safe.
func (m *Multi[K, V]) Get(key K, valid func(V) bool) (V, bool) {
	m.mu.Lock()
	cands := m.entries[key]
	if el := m.elems[key]; el != nil {
		m.lru.MoveToFront(el)
	}
	copied := append([]V(nil), cands...)
	m.mu.Unlock()
	for _, v := range copied {
		if valid == nil || valid(v) {
			m.hits.Add(1)
			return v, true
		}
	}
	var zero V
	m.misses.Add(1)
	return zero, false
}

// Put adds a candidate for key, most-recent first, trimming the
// candidate list to maxPerKey and evicting least-recently-used keys
// beyond maxKeys.
func (m *Multi[K, V]) Put(key K, v V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cands := append([]V{v}, m.entries[key]...)
	if len(cands) > m.maxPerKey {
		cands = cands[:m.maxPerKey]
	}
	m.entries[key] = cands
	if el := m.elems[key]; el != nil {
		m.lru.MoveToFront(el)
	} else {
		m.elems[key] = m.lru.PushFront(key)
	}
	if m.maxKeys > 0 {
		for m.lru.Len() > m.maxKeys {
			el := m.lru.Back()
			old := el.Value.(K)
			m.lru.Remove(el)
			delete(m.entries, old)
			delete(m.elems, old)
			m.evictions.Add(1)
		}
	}
}

// NotePeer records n values obtained from a cluster peer rather than
// computed locally. The values themselves enter the store through Put;
// this only attributes them, so Stats can distinguish the peer warm
// path from disk warms and plain memory hits.
func (m *Multi[K, V]) NotePeer(n uint64) {
	m.peerHits.Add(n)
}

// Len returns the number of keys currently held.
func (m *Multi[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (m *Multi[K, V]) Stats() Stats {
	return Stats{
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Evictions: m.evictions.Load(),
		PeerHits:  m.peerHits.Load(),
	}
}
