package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func stringCodec() (func(string) string, func(string) ([]byte, error), func([]byte) (string, error)) {
	keyPath := func(k string) string { return k + ".art" }
	enc := func(v string) ([]byte, error) { return []byte(v), nil }
	dec := func(data []byte) (string, error) {
		if !strings.HasPrefix(string(data), "val:") {
			return "", fmt.Errorf("corrupt artifact %q", data)
		}
		return string(data), nil
	}
	return keyPath, enc, dec
}

// TestEvictDiskRace hammers the eviction/single-flight seam under
// -race: a tiny LRU with disk pruning enabled, many goroutines mixing
// GetOrCreate, side-effect-free Peek, and plain Get over a key space
// several times the store's capacity, so evictions (and their disk
// unlinks) constantly race in-flight loads, builds, and persists.
//
// The regression being pinned: an eviction's disk delete must never be
// observable as a torn or wrongly missing artifact. Concretely, every
// GetOrCreate must return the key's correct value (rebuilt if its file
// was pruned — never an error, never another key's bytes), and at
// quiescence the persistence directory must contain exactly the
// in-memory entries' files, all decodable: no orphan from a stale evict
// racing a fresh persist, no missing file for a live entry, no .tmp
// debris.
func TestEvictDiskRace(t *testing.T) {
	dir := t.TempDir()
	keyPath, enc, dec := stringCodec()
	s := New(Config[string, string]{
		MaxEntries: 4,
		Dir:        dir,
		KeyPath:    keyPath,
		Encode:     enc,
		Decode:     dec,
		EvictDisk:  true,
	})

	const (
		workers = 16
		keys    = 24
		iters   = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("k%02d", (w*7+i)%keys)
				want := "val:" + k
				switch i % 3 {
				case 0:
					v, _, err := s.GetOrCreate(k, func() (string, error) { return want, nil })
					if err != nil {
						t.Errorf("GetOrCreate(%s): %v", k, err)
						return
					}
					if v != want {
						t.Errorf("GetOrCreate(%s) = %q, want %q", k, v, want)
						return
					}
				case 1:
					if v, ok := s.Get(k); ok && v != want {
						t.Errorf("Get(%s) = %q, want %q", k, v, want)
						return
					}
				default:
					if v, ok := s.Peek(k); ok && v != want {
						t.Errorf("Peek(%s) = %q, want %q", k, v, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiescent invariant: disk ≡ memory. Every live entry has a
	// decodable artifact; every artifact has a live entry (bounded disk
	// — the stale-evict leak would show up as extra files here).
	onDisk := map[string]bool{}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".tmp") {
			t.Errorf("persistence debris left behind: %s", f.Name())
			continue
		}
		k := strings.TrimSuffix(f.Name(), ".art")
		onDisk[k] = true
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", f.Name(), err)
		}
		if _, err := dec(data); err != nil {
			t.Errorf("artifact %s does not decode: %v", f.Name(), err)
		}
	}

	inMem := map[string]bool{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%02d", i)
		if _, ok := s.Peek(k); ok {
			inMem[k] = true
		}
	}
	for k := range inMem {
		if !onDisk[k] {
			t.Errorf("live entry %s has no persisted artifact", k)
		}
	}
	for k := range onDisk {
		if !inMem[k] {
			t.Errorf("orphan artifact %s survived its eviction", k)
		}
	}
	if len(onDisk) > 4 {
		t.Errorf("persistence directory holds %d artifacts, want <= MaxEntries (4)", len(onDisk))
	}
	if n := s.Len(); n > 4 {
		t.Errorf("store holds %d entries, want <= 4", n)
	}
}

// TestEvictDiskPrunes pins the feature itself, serially: with EvictDisk
// set, an evicted entry's artifact leaves the directory with it, and a
// re-request cleanly rebuilds and re-persists.
func TestEvictDiskPrunes(t *testing.T) {
	dir := t.TempDir()
	keyPath, enc, dec := stringCodec()
	s := New(Config[string, string]{
		MaxEntries: 1, Dir: dir, KeyPath: keyPath, Encode: enc, Decode: dec, EvictDisk: true,
	})
	build := func(k string) func() (string, error) {
		return func() (string, error) { return "val:" + k, nil }
	}
	if _, _, err := s.GetOrCreate("a", build("a")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetOrCreate("b", build("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a.art")); !os.IsNotExist(err) {
		t.Errorf("evicted key a's artifact still on disk (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b.art")); err != nil {
		t.Errorf("live key b's artifact missing: %v", err)
	}
	v, hit, err := s.GetOrCreate("a", build("a"))
	if err != nil || v != "val:a" {
		t.Fatalf("rebuild after prune: v=%q hit=%v err=%v", v, hit, err)
	}
	if hit {
		t.Error("pruned artifact reported as a hit: eviction left it reachable")
	}
}

// TestPeekSideEffectFree pins Peek's contract: no counters move, no LRU
// promotion happens, and an in-flight build is not waited on.
func TestPeekSideEffectFree(t *testing.T) {
	s := New(Config[string, string]{MaxEntries: 2})
	if _, _, err := s.GetOrCreate("a", func() (string, error) { return "val:a", nil }); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if v, ok := s.Peek("a"); !ok || v != "val:a" {
		t.Fatalf("Peek(a) = %q, %v", v, ok)
	}
	if _, ok := s.Peek("nope"); ok {
		t.Fatal("Peek invented an entry")
	}
	if after := s.Stats(); after != before {
		t.Errorf("Peek moved counters: %+v -> %+v", before, after)
	}

	// LRU order unchanged by Peek: touch b, c to fill; a peeked but not
	// promoted, so adding c evicts a (LRU), not b.
	if _, _, err := s.GetOrCreate("b", func() (string, error) { return "val:b", nil }); err != nil {
		t.Fatal(err)
	}
	s.Peek("a")
	if _, _, err := s.GetOrCreate("c", func() (string, error) { return "val:c", nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Peek("a"); ok {
		t.Error("peeked key a survived eviction: Peek promoted it")
	}
	if _, ok := s.Peek("b"); !ok {
		t.Error("key b evicted out of order")
	}
}
