package baseline

import (
	"fmt"
	"sort"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
)

// InstrPatchResult summarises an instruction-patching run.
type InstrPatchResult struct {
	Binary  *bin.Binary
	Patched int
	// Short counts patch sites that needed a 2-byte branch to a nearby
	// hop (the tactic E9Patch's instruction-punning machinery serves).
	Short int
	Traps int
	Stats core.Stats
}

// InstrPatch rewrites the binary the E9Patch way: no binary analysis and
// no control flow rewriting. Each requested address (typically every
// instruction, or every block entry chosen by the user) is overwritten
// with a branch to a stub that executes the payload, the displaced
// instruction, and a branch back. Instructions too short for the 5-byte
// branch get a 2-byte branch to a nearby hop; failing that, a trap.
//
// The approach is X64-only, as the paper notes: its trap-avoidance
// tactics depend on that ISA's variable-length encoding and cannot be
// extended to the fixed-width ISAs.
func InstrPatch(b *bin.Binary, points []uint64) (*InstrPatchResult, error) {
	if b.Arch != arch.X64 {
		return nil, fmt.Errorf("e9patch: architecture %s is not supported (x86-64 only)", b.Arch)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	nb := b.Clone()
	text := nb.Text()
	enc := arch.ForArch(arch.X64)

	// Scratch pool for short-branch hops: inter-function nop padding.
	pool := newPool(nb)

	instrBase := alignUp(nb.MaxLoadedAddr(), 0x1000) + 0x10000
	var stubs []byte
	var trapPairs []bin.AddrPair
	res := &InstrPatchResult{Binary: nb}

	sorted := append([]uint64(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for _, p := range sorted {
		if !text.Contains(p) {
			return nil, fmt.Errorf("e9patch: patch point %#x outside text", p)
		}
		raw := text.Data[p-text.Addr:]
		ins, err := enc.Decode(raw, p)
		if err != nil || ins.Kind == arch.Illegal {
			return nil, fmt.Errorf("e9patch: cannot decode instruction at %#x", p)
		}
		stubAddr := instrBase + uint64(len(stubs))
		stub, err := buildStub(ins, stubAddr)
		if err != nil {
			return nil, err
		}
		stubs = append(stubs, stub...)

		// Patch the site without touching any byte beyond the
		// instruction (neighbouring instructions may be branch targets).
		switch {
		case ins.EncLen >= 5:
			br := arch.Instr{Kind: arch.Branch, Addr: p}
			br.SetTarget(stubAddr)
			bs, err := enc.Encode(br)
			if err != nil {
				return nil, err
			}
			writeSite(text, p, ins.EncLen, bs)
		case ins.EncLen >= 2:
			hop, ok := pool.alloc(5, p, 128, 127)
			if !ok {
				writeSite(text, p, ins.EncLen, []byte{0xCC})
				trapPairs = append(trapPairs, bin.AddrPair{From: p, To: stubAddr})
				res.Traps++
				break
			}
			short := arch.Instr{Kind: arch.Branch, Short: true, Addr: p}
			short.SetTarget(hop)
			sb, err := enc.Encode(short)
			if err != nil {
				return nil, err
			}
			writeSite(text, p, ins.EncLen, sb)
			long := arch.Instr{Kind: arch.Branch, Addr: hop}
			long.SetTarget(stubAddr)
			lb, err := enc.Encode(long)
			if err != nil {
				return nil, err
			}
			copy(text.Data[hop-text.Addr:], lb)
			res.Short++
		default:
			writeSite(text, p, ins.EncLen, []byte{0xCC})
			trapPairs = append(trapPairs, bin.AddrPair{From: p, To: stubAddr})
			res.Traps++
		}
		res.Patched++
	}

	if _, err := nb.AddSection(&bin.Section{
		Name: bin.SecInstr, Addr: instrBase, Data: stubs,
		Flags: bin.FlagAlloc | bin.FlagExec, Align: 16,
	}); err != nil {
		return nil, err
	}
	after := alignUp(instrBase+uint64(len(stubs)), 0x1000) + 0x1000
	if _, err := nb.AddSection(&bin.Section{
		Name: bin.SecTrampMap, Addr: after, Data: bin.EncodeAddrMap(trapPairs),
		Flags: bin.FlagAlloc, Align: 8,
	}); err != nil {
		return nil, err
	}
	res.Stats = core.Stats{
		OrigLoadedSize: b.LoadedSize(),
		NewLoadedSize:  nb.LoadedSize(),
	}
	if err := nb.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// buildStub emits [payload (empty)] [displaced instruction, operands
// re-resolved absolutely] [branch back], at stubAddr.
func buildStub(ins arch.Instr, stubAddr uint64) ([]byte, error) {
	enc := arch.ForArch(arch.X64)
	displaced := ins
	displaced.Addr = stubAddr
	if t, ok := ins.Target(); ok {
		displaced.SetTarget(t) // keep the original absolute target
	}
	displaced.Short = false
	out, err := enc.Encode(displaced)
	if err != nil {
		return nil, fmt.Errorf("e9patch: re-encoding %s: %w", ins, err)
	}
	if displaced.FallsThrough() {
		back := arch.Instr{Kind: arch.Branch, Addr: stubAddr + uint64(len(out))}
		back.SetTarget(ins.Addr + uint64(ins.EncLen))
		bb, err := enc.Encode(back)
		if err != nil {
			return nil, err
		}
		out = append(out, bb...)
	}
	return out, nil
}

// writeSite overwrites the patched instruction, nop-filling its tail.
func writeSite(text *bin.Section, p uint64, instrLen int, patch []byte) {
	off := p - text.Addr
	copy(text.Data[off:], patch)
	for i := len(patch); i < instrLen; i++ {
		text.Data[off+uint64(i)] = 0x90
	}
}

// pool is a minimal first-fit scratch allocator over nop padding.
type pool struct{ ranges [][2]uint64 }

func newPool(b *bin.Binary) *pool {
	p := &pool{}
	text := b.Text()
	if text == nil {
		return p
	}
	syms := b.FuncSymbols()
	pos := text.Addr
	for _, s := range syms {
		if s.Addr > pos {
			p.ranges = append(p.ranges, [2]uint64{pos, s.Addr})
		}
		if s.Addr+s.Size > pos {
			pos = s.Addr + s.Size
		}
	}
	if text.End() > pos {
		p.ranges = append(p.ranges, [2]uint64{pos, text.End()})
	}
	return p
}

func (p *pool) alloc(n int, near uint64, maxBack, maxFwd int64) (uint64, bool) {
	for i := range p.ranges {
		r := &p.ranges[i]
		if r[1]-r[0] < uint64(n) {
			continue
		}
		d := int64(r[0] - near)
		if d < -maxBack || d > maxFwd {
			continue
		}
		addr := r[0]
		r[0] += uint64(n)
		return addr, true
	}
	return 0, false
}

func alignUp(v, a uint64) uint64 {
	if a <= 1 {
		return v
	}
	return (v + a - 1) / a * a
}
