// Package baseline implements the binary rewriting approaches the paper
// compares against (Table 1), as ablations or wrappers of the same
// engine that implements incremental CFG patching:
//
//   - InstrPatch: E9Patch-style instruction patching — no control flow
//     rewriting, no relocations, per-instruction trampolines to stubs.
//   - SRBI: structured binary editing — direct control flow only,
//     trampolines at every basic block, call emulation for stack
//     unwinding (with Dyninst-10.2's limitations).
//   - IRLower: Egalito/RetroWrite-style IR lowering — complete analysis
//     of indirect control flow using runtime relocations, all-or-nothing,
//     regenerated text, near-zero overhead, but no exceptions/Go/Rust.
//   - BOLT-like: a binary optimizer that requires link-time relocations
//     for function reordering.
package baseline

import "icfgpatch/internal/bin"

// retargetSymbols rewrites function symbol addresses through the
// relocation map after the regenerated code replaced the original text
// (symbols whose code was dropped entirely are removed). Both the
// IR-lowering and BOLT-like baselines regenerate their symbol tables.
func retargetSymbols(nb *bin.Binary, relocMap map[uint64]uint64) {
	kept := nb.Symbols[:0]
	for _, sym := range nb.Symbols {
		if sym.Kind != bin.SymFunc {
			kept = append(kept, sym)
			continue
		}
		if na, ok := relocMap[sym.Addr]; ok {
			sym.Addr = na
			kept = append(kept, sym)
		}
	}
	nb.Symbols = kept
	dyn := nb.DynSymbols[:0]
	for _, sym := range nb.DynSymbols {
		if na, ok := relocMap[sym.Addr]; ok || sym.Kind != bin.SymFunc {
			if ok {
				sym.Addr = na
			}
			dyn = append(dyn, sym)
		}
	}
	nb.DynSymbols = dyn
}

// Table1Row is one row of the paper's Table 1 comparison.
type Table1Row struct {
	Approach   string
	Rewrites   string // types of control flow rewritten
	Relocation string // relocation entries required
	Unmodified string // handling of unmodified control flow
	Unwinding  string // stack unwinding support
}

// Table1 returns the qualitative comparison of rewriting approaches
// (paper Table 1).
func Table1() []Table1Row {
	return []Table1Row{
		{"BOLT", "", "Link time", "", "Update DWARF"},
		{"Egalito", "Indirect", "Run time", "NA", "NA"},
		{"E9Patch", "No", "None", "Patching", "NA"},
		{"Multiverse", "Direct", "None", "Dynamic translation", "Call emulation"},
		{"RetroWrite", "Indirect", "Run time", "NA", "NA"},
		{"SRBI", "Direct", "None", "Patching", "Call emulation"},
		{"Our work", "Indirect", "None", "Patching", "Dynamic translation"},
	}
}
