package baseline

import (
	"errors"
	"fmt"

	"icfgpatch/internal/analysis"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
)

// ErrNeedsLinkRelocs reproduces BOLT's refusal verbatim: function
// reordering needs link-time relocations, which linkers strip unless the
// program was linked with -Wl,-q — even PIEs with runtime relocations
// are rejected (Section 8.3).
var ErrNeedsLinkRelocs = errors.New("BOLT-ERROR: function reordering only works when relocations are enabled")

// BOLTReorderFunctions reverses the order of all functions, BOLT-style:
// it requires link-time relocations and regenerates the text.
func BOLTReorderFunctions(b *bin.Binary) (*core.Result, error) {
	if len(b.LinkRelocs) == 0 {
		return nil, ErrNeedsLinkRelocs
	}
	return boltRewrite(b, core.Variant{ReverseFuncs: true, FailOnAnyError: true, NoTrampolines: true})
}

// BOLTReorderBlocks reverses the order of blocks within each function
// while keeping function order. BOLT performs this without link-time
// relocations, but its layout machinery has the bug the paper observed:
// for binaries containing jump tables, the regenerated image carries bad
// .interp data and cannot be loaded.
func BOLTReorderBlocks(b *bin.Binary) (*core.Result, error) {
	res, err := boltRewrite(b, core.Variant{ReverseBlocks: true, FailOnAnyError: true, NoTrampolines: true})
	if err != nil {
		return nil, err
	}
	if hasFragileJumpTables(b) {
		// The layout bug: the interpreter path is clobbered during
		// section rewriting. The image builds but will not load.
		if s := res.Binary.Section(bin.SecInterp); s != nil && len(s.Data) > 0 {
			data := s.MutableData() // the result may share untouched sections with the input
			for i := range data {
				data[i] = 0
			}
		}
	}
	return res, nil
}

// boltRewrite regenerates the binary with the given reordering, the
// IR-lowering flow (BOLT is an optimizer: the rewritten code replaces
// the original).
func boltRewrite(b *bin.Binary, v core.Variant) (*core.Result, error) {
	mode := core.ModeFuncPtr
	if !b.PIE && len(b.LinkRelocs) == 0 {
		// Without relocations of any kind, BOLT keeps function entries
		// in place... our model still needs pointer rewriting, so fall
		// back to jt mode and keep entry trampolines.
		mode = core.ModeJT
		v.NoTrampolines = false
	}
	res, err := core.Rewrite(b, core.Options{
		Mode:    mode,
		Request: instrument.Request{Where: instrument.FuncEntry, Payload: instrument.PayloadEmpty},
		Verify:  true,
		Variant: v,
	})
	if err != nil {
		return nil, fmt.Errorf("bolt: %w", err)
	}
	if v.NoTrampolines {
		nb := res.Binary
		newEntry, ok := res.RelocMap[b.Entry]
		if !ok && !b.SharedLib {
			return nil, fmt.Errorf("bolt: entry not relocated")
		}
		nb.RemoveSection(bin.SecText)
		nb.RemoveSection(bin.SecTrampMap)
		instr := nb.Section(bin.SecInstr)
		instr.Name = bin.SecText
		if !b.SharedLib {
			nb.Entry = newEntry
		}
		retargetSymbols(nb, res.RelocMap)
		res.Stats.NewLoadedSize = nb.LoadedSize()
		if err := nb.Validate(); err != nil {
			return nil, fmt.Errorf("bolt: %w", err)
		}
	}
	return res, nil
}

// hasFragileJumpTables reports whether the binary contains two or more
// jump tables whose bounds are not provable from a visible bounds check
// — the table-size situation BOLT's layout machinery mis-handles,
// clobbering .interp in the regenerated image (Section 8.3 observed 10
// of 19 SPEC binaries corrupted).
func hasFragileJumpTables(b *bin.Binary) bool {
	g, err := cfg.Build(b, analysis.NewJumpTables(b))
	if err != nil {
		return false
	}
	fragile := 0
	for _, f := range g.Funcs {
		for _, ij := range f.IndirectJumps {
			if ij.Table != nil && !ij.Table.BoundExact {
				fragile++
			}
		}
	}
	return fragile >= 2
}
