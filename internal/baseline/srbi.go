package baseline

import (
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
)

// SRBIOptions configure the SRBI baseline.
type SRBIOptions struct {
	Request  instrument.Request
	Verify   bool
	InstrGap uint64
}

// SRBI rewrites the binary the way sensitivity-resistant binary
// instrumentation (Dyninst-10.2) does: direct control flow only,
// trampolines at every basic block with no superblock extension or
// retired-section scratch, call emulation instead of RA translation
// (X64 only, with the CallIndMem bug), no gap-based tail-call rescue,
// and exact-or-fail jump table bounds. The coverage and trap-count gaps
// between SRBI and the dir mode are the paper's Table 3 story.
func SRBI(b *bin.Binary, opts SRBIOptions) (*core.Result, error) {
	return core.Rewrite(b, core.Options{
		Mode:     core.ModeDir,
		Request:  opts.Request,
		Verify:   opts.Verify,
		InstrGap: opts.InstrGap,
		NoRAMap:  true, // call emulation predates RA translation
		Variant: core.Variant{
			TrampolineEveryBlock:  true,
			NoSuperblocks:         true,
			NoScratchSections:     true,
			CallEmulation:         true,
			NoTailCallHeuristic:   true,
			StrictJumpTableBounds: true,
		},
	})
}
