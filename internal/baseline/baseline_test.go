package baseline

import (
	"errors"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
)

// testProgram builds a program with calls, a switch and a loop.
func testProgram(t *testing.T, a arch.Arch, pie bool, linkRelocs bool) (*bin.Binary, *asm.DebugInfo) {
	t.Helper()
	b := asm.New(a, pie)
	if linkRelocs {
		b.KeepLinkRelocs()
	}
	inc := b.Func("inc")
	inc.OpI(arch.Add, arch.R0, arch.R1, 1)
	inc.Return()
	b.FuncPtrGlobal("fp", "inc", 0)
	m := b.Func("main")
	m.SetFrame(32)
	m.Li(arch.R3, 0)
	m.Li(arch.R4, 0)
	top := m.Here()
	cases := []asm.Label{m.NewLabel(), m.NewLabel()}
	def := m.NewLabel()
	join := m.NewLabel()
	m.Li(arch.R7, 2)
	m.Op3(arch.Div, arch.R8, arch.R4, arch.R7)
	m.Op3(arch.Mul, arch.R8, arch.R8, arch.R7)
	m.Op3(arch.Sub, arch.R8, arch.R4, arch.R8)
	m.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{})
	m.Bind(cases[0])
	m.OpI(arch.Add, arch.R3, arch.R3, 2)
	m.BranchTo(join)
	m.Bind(cases[1])
	m.StoreLocal(arch.R3, 8)
	m.Mov(arch.R1, arch.R4)
	m.CallF("inc")
	m.LoadLocal(arch.R3, 8)
	m.Op3(arch.Add, arch.R3, arch.R3, arch.R0)
	m.Bind(def)
	m.Bind(join)
	m.OpI(arch.Add, arch.R4, arch.R4, 1)
	m.OpI(arch.Sub, arch.R9, arch.R4, 12)
	m.BranchCondTo(arch.LT, arch.R9, top)
	m.Print(arch.R3)
	m.Halt()
	b.SetEntry("main")
	img, dbg, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return img, dbg
}

func runWith(t *testing.T, img *bin.Binary) (emu.Result, error) {
	t.Helper()
	lib, err := rtlib.Preload(img)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.Load(img, emu.Options{Runtime: lib})
	if err != nil {
		return emu.Result{}, err
	}
	return m.Run()
}

func mustRun(t *testing.T, img *bin.Binary) emu.Result {
	t.Helper()
	res, err := runWith(t, img)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestSRBIPreservesBehaviour(t *testing.T) {
	for _, a := range arch.All() {
		img, _ := testProgram(t, a, false, false)
		want := mustRun(t, img)
		res, err := SRBI(img, SRBIOptions{
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		got := mustRun(t, res.Binary)
		if string(got.Output) != string(want.Output) {
			t.Errorf("%s: output = %q, want %q", a, got.Output, want.Output)
		}
	}
}

func TestSRBISlowerThanOurDirMode(t *testing.T) {
	// Call emulation plus fall-through bounces must cost more than dir
	// mode with RA translation (the Table 3 ordering on X64).
	img, _ := testProgram(t, arch.X64, false, false)
	srbiRes, err := SRBI(img, SRBIOptions{
		Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
		Verify:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dirRes, err := core.Rewrite(img, core.Options{
		Mode:    core.ModeDir,
		Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
		Verify:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srbi := mustRun(t, srbiRes.Binary)
	dir := mustRun(t, dirRes.Binary)
	if srbi.Cycles <= dir.Cycles {
		t.Errorf("SRBI (%d cycles) not slower than dir (%d cycles)", srbi.Cycles, dir.Cycles)
	}
}

func TestSRBILowerCoverageOnSpilledSwitch(t *testing.T) {
	// A switch whose bound is only recoverable via Assumption-2
	// extension: ours instruments the function, SRBI (strict) skips it.
	for _, a := range arch.All() {
		b := asm.New(a, false)
		f := b.Func("main")
		f.SetFrame(32)
		f.Li(arch.R8, 1)
		cases := []asm.Label{f.NewLabel(), f.NewLabel(), f.NewLabel()}
		def := f.NewLabel()
		join := f.NewLabel()
		f.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{SpillIndex: true})
		for _, c := range cases {
			f.Bind(c)
			f.BranchTo(join)
		}
		f.Bind(def)
		f.Bind(join)
		f.Print(arch.R3)
		f.Halt()
		b.SetEntry("main")
		img, _, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		srbiRes, err := SRBI(img, SRBIOptions{
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		if err != nil {
			t.Fatalf("%s: srbi rewrite: %v", a, err)
		}
		ourRes, err := core.Rewrite(img, core.Options{
			Mode:    core.ModeJT,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		if err != nil {
			t.Fatalf("%s: our rewrite: %v", a, err)
		}
		if srbiRes.Stats.Coverage() >= 1 {
			t.Errorf("%s: SRBI coverage = %v, want < 1 (strict bounds)", a, srbiRes.Stats.Coverage())
		}
		if ourRes.Stats.Coverage() != 1 {
			t.Errorf("%s: our coverage = %v, want 1 (bound extension)", a, ourRes.Stats.Coverage())
		}
		// Both still run correctly (SRBI leaves the function alone).
		want := mustRun(t, img)
		if got := mustRun(t, srbiRes.Binary); string(got.Output) != string(want.Output) {
			t.Errorf("%s: srbi output = %q, want %q", a, got.Output, want.Output)
		}
	}
}

func TestSRBIExceptionsFail(t *testing.T) {
	// Call emulation's CallIndMem bug (X64) and the missing fixed-width
	// implementation break exception unwinding through rewritten frames.
	for _, a := range arch.All() {
		b := asm.New(a, false)
		b.SetMeta("lang", "c++")
		b.SetMeta("exceptions", "1")
		th := b.Func("thrower")
		th.Throw()
		th.Return()
		b.FuncPtrGlobal("fp", "thrower", 0)
		m := b.Func("main")
		m.SetFrame(32)
		catch := m.NewLabel()
		m.BeginTry()
		// Indirect call through a stack slot: the x64 call emulation
		// does not emulate these, so a relocated return address lands on
		// the stack and unwinding fails.
		m.LoadGlobal(arch.R9, arch.R9, "fp", 8)
		m.CallStackSlot(arch.R9, 8)
		m.EndTry(catch)
		m.Bind(catch)
		m.Li(arch.R3, 40)
		m.Print(arch.R3)
		m.Halt()
		b.SetEntry("main")
		img, _, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		if got := mustRun(t, img); string(got.Output) != "40\n" {
			t.Fatalf("%s: original output = %q", a, got.Output)
		}
		res, err := SRBI(img, SRBIOptions{
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if _, err := runWith(t, res.Binary); err == nil {
			t.Errorf("%s: SRBI-rewritten exception binary ran — expected unwinding failure", a)
		}
	}
}

func TestIRLowerNearZeroOverheadAndSize(t *testing.T) {
	img, _ := testProgram(t, arch.X64, true, false)
	want := mustRun(t, img)
	res, err := IRLower(img, IRLowerOptions{
		Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, res.Binary)
	if string(got.Output) != string(want.Output) {
		t.Fatalf("output = %q, want %q", got.Output, want.Output)
	}
	// Near-zero overhead: no trampolines, no bouncing.
	ratio := float64(got.Cycles)/float64(want.Cycles) - 1
	if ratio > 0.02 {
		t.Errorf("IR lowering overhead = %.2f%%, want ~0", ratio*100)
	}
	// Size stays close to the original (text replaced, not added).
	if res.Stats.SizeIncrease() > 0.30 {
		t.Errorf("IR lowering size increase = %.1f%%, want small", res.Stats.SizeIncrease()*100)
	}
	if res.Binary.Section(bin.SecInstr) != nil {
		t.Error("instr section not promoted to text")
	}
}

func TestIRLowerRestrictions(t *testing.T) {
	nopie, _ := testProgram(t, arch.X64, false, false)
	if _, err := IRLower(nopie, IRLowerOptions{}); !errors.Is(err, ErrNeedsPIE) {
		t.Errorf("non-PIE: err = %v, want ErrNeedsPIE", err)
	}

	mk := func(metaK, metaV string) *bin.Binary {
		b := asm.New(arch.X64, true)
		f := b.Func("main")
		f.Halt()
		b.SetMeta(metaK, metaV)
		img, _, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	if _, err := IRLower(mk("exceptions", "1"), IRLowerOptions{}); !errors.Is(err, ErrExceptions) {
		t.Errorf("exceptions: err = %v", err)
	}
	if _, err := IRLower(mk("go-runtime", "1"), IRLowerOptions{}); !errors.Is(err, ErrGoMeta) {
		t.Errorf("go: err = %v", err)
	}
	if _, err := IRLower(mk("lang", "c++/rust"), IRLowerOptions{}); !errors.Is(err, ErrRustMeta) {
		t.Errorf("rust: err = %v", err)
	}
	if _, err := IRLower(mk("symbol-versioning", "1"), IRLowerOptions{}); !errors.Is(err, ErrSymbolVersioning) {
		t.Errorf("symver: err = %v", err)
	}
}

func TestIRLowerAllOrNothing(t *testing.T) {
	// One opaque-base switch fails the whole binary for IR lowering,
	// while ours instruments everything else.
	b := asm.New(arch.X64, true)
	hard := b.Func("hard")
	hard.SetFrame(16)
	hard.Li(arch.R8, 0)
	cases := []asm.Label{hard.NewLabel(), hard.NewLabel()}
	def := hard.NewLabel()
	join := hard.NewLabel()
	hard.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{OpaqueBase: true})
	// Case bodies are reachable only through the table: unresolved
	// dispatch leaves real-code gaps, so the function fails gracefully.
	hard.Bind(cases[0])
	hard.OpI(arch.Add, arch.R0, arch.R0, 1)
	hard.BranchTo(join)
	hard.Bind(cases[1])
	hard.OpI(arch.Add, arch.R0, arch.R0, 2)
	hard.BranchTo(join)
	hard.Bind(def)
	hard.OpI(arch.Add, arch.R0, arch.R0, 3)
	hard.Bind(join)
	hard.Return()
	m := b.Func("main")
	m.SetFrame(16)
	m.CallF("hard")
	m.Print(arch.R3)
	m.Halt()
	b.SetEntry("main")
	img, _, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IRLower(img, IRLowerOptions{}); !errors.Is(err, ErrIncomplete) {
		t.Errorf("err = %v, want ErrIncomplete", err)
	}
	ours, err := core.Rewrite(img, core.Options{
		Mode:    core.ModeJT,
		Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
		Verify:  true,
	})
	if err != nil {
		t.Fatalf("incremental rewriting must survive: %v", err)
	}
	if ours.Stats.Coverage() >= 1 || ours.Stats.Coverage() <= 0 {
		t.Errorf("our coverage = %v, want partial", ours.Stats.Coverage())
	}
	want := mustRun(t, img)
	if got := mustRun(t, ours.Binary); string(got.Output) != string(want.Output) {
		t.Errorf("partial rewrite output = %q, want %q", got.Output, want.Output)
	}
}

func TestInstrPatchCorrectButSlow(t *testing.T) {
	img, dbg := testProgram(t, arch.X64, false, false)
	want := mustRun(t, img)
	// Patch every instruction of main (the E9Patch usage model: user
	// supplies addresses, no analysis).
	var points []uint64
	text := img.Text()
	start, end := dbg.FuncStart["main"], dbg.FuncEnd["main"]
	for _, ins := range arch.DecodeAll(arch.X64, text.Data[start-text.Addr:end-text.Addr], start) {
		if ins.Kind != arch.Nop && ins.Kind != arch.Illegal {
			points = append(points, ins.Addr)
		}
	}
	res, err := InstrPatch(img, points)
	if err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, res.Binary)
	if string(got.Output) != string(want.Output) {
		t.Fatalf("output = %q, want %q", got.Output, want.Output)
	}
	overhead := float64(got.Cycles)/float64(want.Cycles) - 1
	if overhead < 0.5 {
		t.Errorf("instruction patching overhead = %.0f%%, expected prohibitive (>50%%)", overhead*100)
	}
	if res.Patched != len(points) {
		t.Errorf("patched %d, want %d", res.Patched, len(points))
	}
}

func TestInstrPatchRejectsFixedWidth(t *testing.T) {
	img, _ := testProgram(t, arch.PPC, false, false)
	if _, err := InstrPatch(img, nil); err == nil {
		t.Error("e9patch accepted a fixed-width ISA")
	}
}

func TestBOLTFunctionReorderNeedsLinkRelocs(t *testing.T) {
	// Without -Wl,-q: refused, even for PIE.
	for _, pie := range []bool{false, true} {
		img, _ := testProgram(t, arch.X64, pie, false)
		if _, err := BOLTReorderFunctions(img); !errors.Is(err, ErrNeedsLinkRelocs) {
			t.Errorf("pie=%v: err = %v, want ErrNeedsLinkRelocs", pie, err)
		}
	}
	// With link relocs: works and preserves behaviour.
	img, _ := testProgram(t, arch.X64, true, true)
	want := mustRun(t, img)
	res, err := BOLTReorderFunctions(img)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustRun(t, res.Binary); string(got.Output) != string(want.Output) {
		t.Errorf("reordered output = %q, want %q", got.Output, want.Output)
	}
}

func TestBOLTBlockReorderCorruptsJumpTableBinaries(t *testing.T) {
	// A binary with several fragile (inexact-bound) jump tables trips
	// BOLT's layout bug.
	b0 := asm.New(arch.X64, true)
	f0 := b0.Func("main")
	f0.SetFrame(32)
	for k := 0; k < 2; k++ {
		cases := []asm.Label{f0.NewLabel(), f0.NewLabel()}
		def := f0.NewLabel()
		join := f0.NewLabel()
		f0.Li(arch.R8, 1)
		f0.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{SpillIndex: true})
		for _, c := range cases {
			f0.Bind(c)
			f0.BranchTo(join)
		}
		f0.Bind(def)
		f0.Bind(join)
	}
	f0.Print(arch.R3)
	f0.Halt()
	b0.SetEntry("main")
	img, _, err := b0.Link()
	if err != nil {
		t.Fatal(err)
	}
	res, err := BOLTReorderBlocks(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runWith(t, res.Binary); err == nil {
		t.Error("corrupted .interp loaded anyway")
	}

	// A binary without jump tables survives.
	b := asm.New(arch.X64, true)
	f := b.Func("main")
	els := f.NewLabel()
	done := f.NewLabel()
	f.Li(arch.R3, 3)
	f.BranchCondTo(arch.EQ, arch.R3, els)
	f.OpI(arch.Add, arch.R3, arch.R3, 10)
	f.BranchTo(done)
	f.Bind(els)
	f.OpI(arch.Sub, arch.R3, arch.R3, 1)
	f.Bind(done)
	f.Print(arch.R3)
	f.Halt()
	b.SetEntry("main")
	plain, _, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	want := mustRun(t, plain)
	res2, err := BOLTReorderBlocks(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustRun(t, res2.Binary); string(got.Output) != string(want.Output) {
		t.Errorf("block-reordered output = %q, want %q", got.Output, want.Output)
	}
}

func TestOurReorderingWorksEverywhere(t *testing.T) {
	// Section 8.3: our approach reorders functions and blocks for every
	// binary, no relocations required.
	for _, variant := range []core.Variant{{ReverseFuncs: true}, {ReverseBlocks: true}} {
		for _, pie := range []bool{false, true} {
			img, _ := testProgram(t, arch.X64, pie, false)
			want := mustRun(t, img)
			res, err := core.Rewrite(img, core.Options{
				Mode:    core.ModeJT,
				Request: instrument.Request{Where: instrument.FuncEntry, Payload: instrument.PayloadEmpty},
				Verify:  true,
				Variant: variant,
			})
			if err != nil {
				t.Fatalf("variant %+v pie=%v: %v", variant, pie, err)
			}
			if got := mustRun(t, res.Binary); string(got.Output) != string(want.Output) {
				t.Errorf("variant %+v pie=%v: output = %q, want %q", variant, pie, got.Output, want.Output)
			}
		}
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("Table 1 has %d rows, want 7", len(rows))
	}
	if rows[len(rows)-1].Approach != "Our work" || rows[len(rows)-1].Unwinding != "Dynamic translation" {
		t.Error("our-work row wrong")
	}
}

func TestInstrPatchTactics(t *testing.T) {
	// Short instructions force the 2-byte-branch-to-hop tactic or, with
	// no nearby padding, a trap — E9Patch's trap-avoidance story.
	img, dbg := testProgram(t, arch.X64, false, false)
	want := mustRun(t, img)
	text := img.Text()
	start, end := dbg.FuncStart["inc"], dbg.FuncEnd["inc"]
	var points []uint64
	for _, ins := range arch.DecodeAll(arch.X64, text.Data[start-text.Addr:end-text.Addr], start) {
		points = append(points, ins.Addr) // includes the 1-byte ret
	}
	res, err := InstrPatch(img, points)
	if err != nil {
		t.Fatal(err)
	}
	if res.Short+res.Traps == 0 {
		t.Errorf("no short/trap tactics used despite sub-5-byte instructions (short=%d traps=%d)", res.Short, res.Traps)
	}
	got, err := runWith(t, res.Binary)
	if err != nil {
		t.Fatalf("patched run: %v", err)
	}
	if string(got.Output) != string(want.Output) {
		t.Errorf("output = %q, want %q", got.Output, want.Output)
	}
	if res.Traps > 0 && got.Traps == 0 {
		t.Log("trap trampolines installed but not executed (cold)")
	}
}

func TestInstrPatchRejectsBadPoints(t *testing.T) {
	img, _ := testProgram(t, arch.X64, false, false)
	if _, err := InstrPatch(img, []uint64{0xdead0000}); err == nil {
		t.Error("point outside text accepted")
	}
}
