package baseline

import (
	"errors"
	"fmt"
	"strings"

	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
)

// Errors an IR-lowering rewriter reports when its assumptions fail; each
// corresponds to a failure the paper observed with Egalito.
var (
	// ErrNeedsPIE: IR lowering requires runtime relocation entries,
	// which only position independent binaries carry.
	ErrNeedsPIE = errors.New("irlower: position dependent code is not supported (runtime relocations required)")
	// ErrExceptions: C++ exceptions are a known limitation.
	ErrExceptions = errors.New("irlower: C++ exceptions are not supported")
	// ErrGoMeta: Go binaries carry unsupported metadata and a runtime
	// that natively unwinds the stack.
	ErrGoMeta = errors.New("irlower: unsupported meta-data in Go binary")
	// ErrRustMeta: Rust metadata (as in Firefox's libxul.so) is not
	// supported.
	ErrRustMeta = errors.New("irlower: unsupported Rust meta-data")
	// ErrSymbolVersioning: symbol versioning information (common in C++
	// shared libraries such as libcuda.so) cannot be rewritten.
	ErrSymbolVersioning = errors.New("irlower: cannot rewrite symbol versioning information")
	// ErrIncomplete: one function resisted analysis, and IR lowering is
	// all-or-nothing.
	ErrIncomplete = errors.New("irlower: incomplete binary analysis")
)

// IRLowerOptions configure the IR lowering baseline.
type IRLowerOptions struct {
	Request instrument.Request
}

// IRLower rewrites the binary the way Egalito/RetroWrite-style IR
// lowering does: lift everything (all-or-nothing), rewrite all direct
// and indirect control flow using runtime relocation entries, and emit
// regenerated code as the new text section — no trampolines, near-zero
// runtime overhead, and near-zero size increase, at the price of the
// generality restrictions encoded in the error values above.
func IRLower(b *bin.Binary, opts IRLowerOptions) (*core.Result, error) {
	if !b.PIE {
		return nil, ErrNeedsPIE
	}
	if b.UsesExceptions() {
		return nil, ErrExceptions
	}
	if b.GoRuntime() {
		return nil, ErrGoMeta
	}
	if strings.Contains(b.Lang(), "rust") {
		return nil, ErrRustMeta
	}
	if b.Meta["symbol-versioning"] == "1" {
		return nil, ErrSymbolVersioning
	}
	res, err := core.Rewrite(b, core.Options{
		Mode:    core.ModeFuncPtr,
		Request: opts.Request,
		Verify:  true, // old text is dropped below; nothing may reach it
		Variant: core.Variant{
			FailOnAnyError: true,
			NoTrampolines:  true,
		},
	})
	if err != nil {
		if errors.Is(err, core.ErrImpreciseFuncPtrs) {
			return nil, fmt.Errorf("%w: %v", ErrGoMeta, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrIncomplete, err)
	}

	// The relocated code becomes the program: drop the original text,
	// promote .instr, and enter at the relocated entry point.
	nb := res.Binary
	newEntry, ok := res.RelocMap[b.Entry]
	if !ok && !b.SharedLib {
		return nil, fmt.Errorf("%w: entry point was not relocated", ErrIncomplete)
	}
	nb.RemoveSection(bin.SecText)
	nb.RemoveSection(bin.SecTrampMap)
	instr := nb.Section(bin.SecInstr)
	if instr == nil {
		return nil, fmt.Errorf("irlower: missing relocated code section")
	}
	instr.Name = bin.SecText
	if !b.SharedLib {
		nb.Entry = newEntry
	}
	retargetSymbols(nb, res.RelocMap)
	res.Stats.NewLoadedSize = nb.LoadedSize()
	if err := nb.Validate(); err != nil {
		return nil, fmt.Errorf("irlower: regenerated binary invalid: %w", err)
	}
	return res, nil
}
