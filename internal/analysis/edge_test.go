package analysis

import (
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/cfg"
)

// bigSwitchBinary builds a function large enough to force 2-byte A64
// table entries (functions over 1KB use rel16).
func bigSwitchBinary(t *testing.T, filler int) (*asm.Builder, *asm.FuncBuilder, []asm.Label, asm.Label) {
	t.Helper()
	b := asm.New(arch.A64, false)
	f := b.Func("main")
	f.SetFrame(16)
	f.Li(arch.R8, 1)
	cases := []asm.Label{f.NewLabel(), f.NewLabel(), f.NewLabel()}
	def := f.NewLabel()
	f.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{})
	return b, f, cases, def
}

func TestA64TableStyleDependsOnFunctionSize(t *testing.T) {
	build := func(filler int) asm.TableInfo {
		b, f, cases, def := bigSwitchBinary(t, filler)
		join := f.NewLabel()
		for _, c := range cases {
			f.Bind(c)
			f.BranchTo(join)
		}
		f.Bind(def)
		f.Bind(join)
		for i := 0; i < filler; i++ {
			f.OpI(arch.Add, arch.R3, arch.R3, 1)
		}
		f.Halt()
		b.SetEntry("main")
		_, dbg, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		return dbg.Tables[0]
	}
	small := build(4)
	if small.EntrySize != 1 {
		t.Errorf("small function entry size %d, want 1 (tbb)", small.EntrySize)
	}
	big := build(400) // 400 × 4 bytes pushes the function over 1KB
	if big.EntrySize != 2 {
		t.Errorf("big function entry size %d, want 2 (tbh)", big.EntrySize)
	}
}

func TestA64CompressedTablesResolve(t *testing.T) {
	// Both tbb- and tbh-style tables must resolve with exact bounds and
	// correct targets.
	for _, filler := range []int{4, 400} {
		b, f, cases, def := bigSwitchBinary(t, filler)
		join := f.NewLabel()
		for _, c := range cases {
			f.Bind(c)
			f.BranchTo(join)
		}
		f.Bind(def)
		f.Bind(join)
		for i := 0; i < filler; i++ {
			f.OpI(arch.Add, arch.R3, arch.R3, 1)
		}
		f.Halt()
		b.SetEntry("main")
		img, dbg, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		g, err := cfg.Build(img, NewJumpTables(img))
		if err != nil {
			t.Fatal(err)
		}
		fn, _ := g.FuncByName("main")
		if fn.Err != nil {
			t.Fatalf("filler=%d: %v", filler, fn.Err)
		}
		tbl := fn.IndirectJumps[0].Table
		truth := dbg.Tables[0]
		if tbl == nil || tbl.Kind != cfg.TarFuncRel4 {
			t.Fatalf("filler=%d: table %+v", filler, tbl)
		}
		if tbl.EntrySize != truth.EntrySize || tbl.Count != truth.N {
			t.Errorf("filler=%d: size/count %d/%d, want %d/%d",
				filler, tbl.EntrySize, tbl.Count, truth.EntrySize, truth.N)
		}
		for i, target := range tbl.Targets {
			if target != truth.Targets[i] {
				t.Errorf("filler=%d target[%d]: %#x vs %#x", filler, i, target, truth.Targets[i])
			}
		}
	}
}

func TestInterleavedRodataBoundsExtension(t *testing.T) {
	// Assumption 2 on A64: jump tables separated by constant data. A
	// spilled-bound table must stop at the interleaved blob (which the
	// code references PC-relatively), not swallow it.
	b := asm.New(arch.A64, false)
	f := b.Func("main")
	f.SetFrame(16)
	f.Li(arch.R8, 1)
	cases := []asm.Label{f.NewLabel(), f.NewLabel()}
	def := f.NewLabel()
	join := f.NewLabel()
	f.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{SpillIndex: true})
	// A string constant lands right after the table in .rodata, and the
	// code takes its address (creating the boundary hint).
	b.RodataBytes("greeting", []byte("hello, assumption 2!"))
	for _, c := range cases {
		f.Bind(c)
		f.BranchTo(join)
	}
	f.Bind(def)
	f.Bind(join)
	f.LoadGlobalAddr(arch.R5, "greeting")
	f.Halt()
	b.SetEntry("main")
	img, dbg, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(img, NewJumpTables(img))
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := g.FuncByName("main")
	if fn.Err != nil {
		t.Fatal(fn.Err)
	}
	tbl := fn.IndirectJumps[0].Table
	if tbl.BoundExact {
		t.Fatal("bound unexpectedly exact (spill should have hidden it)")
	}
	truth := dbg.Tables[0]
	tableEnd := tbl.TableAddr + uint64(tbl.Count*tbl.EntrySize)
	blob, _ := img.SymbolByName("greeting")
	_ = blob
	if tbl.Count < truth.N {
		t.Errorf("under-approximated: %d < %d", tbl.Count, truth.N)
	}
	// The extension must not have consumed unbounded rodata.
	if tbl.Count > truth.N+64 {
		t.Errorf("extension ran away: %d entries (truth %d, table end %#x)", tbl.Count, truth.N, tableEnd)
	}
}

func TestResolverRejectsNonJumpInstruction(t *testing.T) {
	b := asm.New(arch.X64, false)
	f := b.Func("main")
	f.Li(arch.R3, 1)
	f.Halt()
	b.SetEntry("main")
	img, dbg, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := g.FuncByName("main")
	jt := NewJumpTables(img)
	if _, err := jt.ResolveJump(img, fn, dbg.FuncStart["main"]); err == nil {
		t.Error("resolved a non-jump instruction")
	}
	if _, err := jt.ResolveJump(img, fn, 0xdeadbeef); err == nil {
		t.Error("resolved an address outside any block")
	}
}
