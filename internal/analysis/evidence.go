package analysis

import (
	"encoding/binary"
	"sort"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
)

// SourceKind identifies one target-evidence source. Indirect-control-flow
// resolution is layered over these sources in rank order: the landing-pad
// source runs first (it establishes the marker ground truth every later
// source is validated against), then the three pointer sources in the
// order the conservative analysis has always scanned them, and finally
// the jump-table source, which contributes bound decisions made during
// CFG construction.
type SourceKind uint8

// Evidence sources, in rank order.
const (
	// SourceLandingPad is the CET-style marker evidence: arch.Mark
	// instructions at indirect-transfer targets, scanned before any
	// other source and used to validate (or refute) their candidates.
	SourceLandingPad SourceKind = iota
	// SourceReloc is a runtime relocation whose value is a code address
	// (the PIE case Egalito and RetroWrite rely on).
	SourceReloc
	// SourceDataCell is an 8-byte initialised data cell holding a code
	// address in position dependent binaries.
	SourceDataCell
	// SourceCodeImm is a code-materialised pointer: a movimm (X64) or a
	// movz/movk pair (fixed-width ISAs) whose composed value is a code
	// address.
	SourceCodeImm
	// SourceJumpTable is the jump-table bound logic: table targets
	// resolved (and, with markers, bound-validated) during CFG
	// construction.
	SourceJumpTable
)

var sourceNames = [...]string{
	SourceLandingPad: "landing-pad", SourceReloc: "reloc",
	SourceDataCell: "data-cell", SourceCodeImm: "code-imm",
	SourceJumpTable: "jump-table",
}

// String names the source.
func (k SourceKind) String() string {
	if int(k) < len(sourceNames) {
		return sourceNames[k]
	}
	return "source(?)"
}

// Source is one ranked target-evidence source. Collect contributes the
// source's evidence for the binary to ev: pointer sites, marker indexes,
// attribution counts. The graph is nil for sources that run before CFG
// construction (the landing-pad scan).
type Source interface {
	Kind() SourceKind
	Collect(b *bin.Binary, g *cfg.Graph, ev *Evidence) error
}

// MarkIndex is the set of landing-pad marker addresses found at
// instruction boundaries of the text section.
type MarkIndex struct {
	m map[uint64]bool
}

// Marked reports whether addr carries a landing-pad marker. A nil index
// marks nothing.
func (x *MarkIndex) Marked(addr uint64) bool { return x != nil && x.m[addr] }

// Count returns the number of marker sites.
func (x *MarkIndex) Count() int {
	if x == nil {
		return 0
	}
	return len(x.m)
}

// Addrs returns the marker addresses in ascending order.
func (x *MarkIndex) Addrs() []uint64 {
	if x == nil {
		return nil
	}
	out := make([]uint64, 0, len(x.m))
	for a := range x.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Evidence aggregates what every source contributed for one binary: the
// marker index and the trust decision over it, the collected pointer
// sites with per-source attribution, and the skip/bound counters the
// experiments report. It is assembled inside core.Analyze and read-only
// afterwards.
type Evidence struct {
	// Marks indexes the landing-pad marker sites (nil when none).
	Marks *MarkIndex
	// Trusted reports whether marker evidence is engaged: the binary
	// claims CFI (bin.Binary.CFI), markers exist, every function entry
	// is marked, and no candidate pointer lands on a mid-instruction
	// marker. Untrusted evidence degrades every consumer to the exact
	// conservative path.
	Trusted bool
	// Corrupt reports markers that failed verification (a marker
	// mid-instruction reachable through a candidate pointer, or an
	// unmarked function entry in a CFI-claiming binary).
	Corrupt bool
	// Counts attributes collected evidence per source: kept pointer
	// sites for the three pointer sources, marker sites for
	// SourceLandingPad, resolved tables for SourceJumpTable.
	Counts map[SourceKind]int
	// Skipped counts candidate pointers the conservative analysis would
	// have refused (ErrImprecise) but landing-pad evidence proved to be
	// no indirect target: under CET enforcement both the original and
	// the rewritten binary fault identically on them, so leaving the
	// value unrewritten is sound.
	Skipped int
	// MarkBoundedTables counts jump tables whose inexact bounds were
	// tightened at the first unmarked candidate entry.
	MarkBoundedTables int

	// collection state, transient within FuncPointers.
	sites    []PtrSite
	slotSeen map[uint64]bool
}

// Untrusted returns evidence with no marker knowledge: every consumer
// takes the conservative path. It is what marker-less (and NoEvidence)
// analyses run with.
func Untrusted() *Evidence {
	return &Evidence{Counts: map[SourceKind]int{}}
}

// ScanEvidence runs the landing-pad source over the binary and returns
// the evidence layer seeded with the marker index and trust decision.
// It runs before CFG construction — the trust bit is part of the
// analysis identity, so it must be decided before any unit is keyed.
func ScanEvidence(b *bin.Binary) *Evidence {
	ev := Untrusted()
	// The error path is unreachable (the scan cannot fail); kept on the
	// interface so richer sources can refuse.
	_ = landingPadSource{}.Collect(b, nil, ev)
	return ev
}

// landingPadSource scans the text section for arch.Mark sites and
// decides whether the marker evidence is trustworthy.
type landingPadSource struct{}

// Kind implements Source.
func (landingPadSource) Kind() SourceKind { return SourceLandingPad }

// Collect implements Source: a linear sweep collecting marker addresses
// and instruction boundaries, then the trust checks. Markers found in a
// binary that does not claim CFI are indexed (icfg-objdump lists them)
// but never trusted — completeness is the compiler's claim, not
// something a scan can establish.
func (landingPadSource) Collect(b *bin.Binary, _ *cfg.Graph, ev *Evidence) error {
	text := b.Text()
	if text == nil {
		return nil
	}
	enc := arch.ForArch(b.Arch)
	boundary := make(map[uint64]bool, len(text.Data)/4)
	marks := map[uint64]bool{}
	// Candidate code-immediate values seen during the sweep, checked
	// below for mid-instruction markers.
	var imms []uint64
	var prev arch.Instr
	for addr := text.Addr; addr < text.End(); {
		boundary[addr] = true
		ins, err := enc.Decode(text.Data[addr-text.Addr:], addr)
		if err != nil {
			break
		}
		switch ins.Kind {
		case arch.Mark:
			marks[addr] = true
		case arch.MovImm:
			imms = append(imms, uint64(ins.Imm))
		case arch.MovK16:
			if prev.Kind == arch.MovImm16 && prev.Shift == 0 && ins.Shift == 1 && ins.Rd == prev.Rd {
				imms = append(imms, uint64(prev.Imm)|uint64(ins.Imm)<<16)
			}
		}
		prev = ins
		addr += uint64(ins.EncLen)
	}
	if len(marks) > 0 {
		ev.Marks = &MarkIndex{m: marks}
	}
	ev.Counts[SourceLandingPad] = len(marks)
	if !b.CFI() || len(marks) == 0 {
		return nil
	}

	// Trust check 1: every function entry must be marked — an indirect
	// call to an unmarked entry means the markers are incomplete or
	// stripped.
	for _, sym := range b.FuncSymbols() {
		if sym.Size == 0 {
			continue
		}
		if !marks[sym.Addr] {
			ev.Corrupt = true
			return nil
		}
	}

	// Trust check 2: no candidate pointer value may decode as a marker
	// at a non-boundary address — a marker byte pattern embedded
	// mid-instruction would let the evidence layer "prove" reachability
	// of an address the program never executes as a landing pad.
	checkValue := func(v uint64) {
		if !text.Contains(v) || boundary[v] {
			return
		}
		if ins, err := enc.Decode(text.Data[v-text.Addr:], v); err == nil && ins.Kind == arch.Mark {
			ev.Corrupt = true
		}
	}
	for _, rl := range b.Relocs {
		if rl.Kind == bin.RelocRelative {
			checkValue(uint64(rl.Addend))
		}
	}
	if data := b.Section(bin.SecData); data != nil {
		for off := uint64(0); off+8 <= data.Size(); off += 8 {
			checkValue(binary.LittleEndian.Uint64(data.Data[off:]))
		}
	}
	for _, v := range imms {
		checkValue(v)
	}
	if ev.Corrupt {
		return nil
	}
	ev.Trusted = true
	return nil
}

// provablyUnreachable reports whether v cannot be an indirect-transfer
// target: marker evidence is trusted and v carries no marker, so under
// CET semantics an indirect transfer to v faults in the original binary
// exactly as it would in the rewritten one. The conservative analysis
// must refuse such values; with landing pads they are safely skippable.
func (ev *Evidence) provablyUnreachable(v uint64) bool {
	if ev == nil || !ev.Trusted {
		return false
	}
	return !ev.Marks.Marked(v)
}
