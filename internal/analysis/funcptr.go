package analysis

import (
	"encoding/binary"
	"errors"
	"fmt"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
)

// ErrImprecise reports that function pointer identification cannot be
// precise for this binary. Per the safety requirement of Section 5.2,
// modifying an over- or under-approximated pointer set changes program
// behaviour, so func-ptr mode must refuse rather than guess — the
// situation the paper hits with Go's language-specific function tables.
// Trusted landing-pad evidence narrows the refusal: candidates that
// provably cannot be indirect targets are skipped instead.
var ErrImprecise = errors.New("analysis: imprecise function pointers")

// PtrSiteKind classifies where a function pointer is defined. It is the
// evidence-source vocabulary; the historical names below remain the
// values the rewriter switches on.
type PtrSiteKind = SourceKind

// Pointer definition sites (aliases of the evidence sources).
const (
	// PtrReloc is a runtime relocation whose value is a code address.
	PtrReloc = SourceReloc
	// PtrDataCell is an 8-byte initialised data cell holding a code
	// address in position dependent binaries.
	PtrDataCell = SourceDataCell
	// PtrCodeImm is a code-materialised pointer (movimm / movz+movk).
	PtrCodeImm = SourceCodeImm
)

// PtrSite is one function pointer definition.
type PtrSite struct {
	Kind PtrSiteKind
	// Slot is the data address being initialised (PtrReloc/PtrDataCell).
	Slot uint64
	// Instrs are the materialising instruction addresses (PtrCodeImm).
	Instrs []uint64
	// Value is the pointer value: a function entry, possibly plus a
	// small delta (the Listing 1 "goexit+1" pattern). The rewriter maps
	// it through the instruction-level relocation map, which is the
	// forward-slicing-tracked rewrite of Section 5.2.
	Value uint64
}

// FuncPointers identifies every function pointer definition in the
// binary with no marker evidence engaged — the conservative path, which
// fails with ErrImprecise when a candidate cannot be validated: a
// code-address-like value that does not land on an instruction boundary
// of its function means the binary manufactures code pointers the
// analysis cannot model (Go function tables).
func FuncPointers(b *bin.Binary, g *cfg.Graph) ([]PtrSite, error) {
	return Untrusted().FuncPointers(b, g)
}

// FuncPointers runs the ranked pointer sources (reloc, data-cell,
// code-imm) under this evidence. With trusted landing pads, candidates
// the conservative analysis would refuse are skipped when no marker
// covers them — provably not indirect targets — converting whole-binary
// refusal into sound acceptance; without trust, behaviour and errors are
// byte-identical to the historical conservative analysis.
func (ev *Evidence) FuncPointers(b *bin.Binary, g *cfg.Graph) ([]PtrSite, error) {
	if b.Text() == nil {
		return nil, fmt.Errorf("analysis: no text section")
	}
	ev.sites = nil
	ev.slotSeen = map[uint64]bool{}
	for _, src := range []Source{relocSource{}, dataCellSource{}, codeImmSource{}} {
		if err := src.Collect(b, g, ev); err != nil {
			return nil, err
		}
		ev.Counts[src.Kind()] = countKind(ev.sites, src.Kind())
	}
	sites := ev.sites
	ev.sites, ev.slotSeen = nil, nil
	return sites, nil
}

func countKind(sites []PtrSite, k SourceKind) int {
	n := 0
	for _, s := range sites {
		if s.Kind == k {
			n++
		}
	}
	return n
}

// validate classifies a code-address-like value: keep (a rewritable
// pointer into relocated code), skip (needs no rewriting: targets stay
// in place — pointers into unanalysable functions, in-code table data,
// inter-function padding), or fail (a pointer into relocated code that
// is not an instruction boundary: rewriting it cannot be precise, so
// func-ptr mode must refuse). Trusted landing-pad evidence intercepts
// the failure paths: an unmarked target is provably unreachable by any
// indirect transfer, so the value is skipped instead.
func (ev *Evidence) validate(g *cfg.Graph, v uint64, what string) (keep bool, err error) {
	f, ok := g.FuncContaining(v)
	if !ok {
		return false, nil // padding or data-in-text; stays in place
	}
	if !f.Instrumentable() {
		return false, nil // function is not relocated; value stays valid
	}
	if v == f.Entry {
		return true, nil
	}
	for _, dr := range f.DataRanges {
		if v >= dr[0] && v < dr[1] {
			return false, nil // pointer to embedded table data
		}
	}
	blk, ok := f.BlockContaining(v)
	if !ok {
		if ev.provablyUnreachable(v) {
			ev.Skipped++
			return false, nil
		}
		return false, fmt.Errorf("%w: %s value %#x points into unexplored bytes of %s", ErrImprecise, what, v, f.Name)
	}
	for _, ins := range blk.Instrs {
		if ins.Addr == v {
			return true, nil
		}
	}
	if ev.provablyUnreachable(v) {
		ev.Skipped++
		return false, nil
	}
	return false, fmt.Errorf("%w: %s value %#x is not an instruction boundary in %s", ErrImprecise, what, v, f.Name)
}

// relocSource finds pointers defined by runtime relocations (PIE).
type relocSource struct{}

// Kind implements Source.
func (relocSource) Kind() SourceKind { return SourceReloc }

// Collect implements Source.
func (relocSource) Collect(b *bin.Binary, g *cfg.Graph, ev *Evidence) error {
	text := b.Text()
	for _, rl := range b.Relocs {
		if rl.Kind != bin.RelocRelative {
			continue
		}
		v := uint64(rl.Addend)
		if !text.Contains(v) {
			continue
		}
		keep, err := ev.validate(g, v, "relocation")
		if err != nil {
			return err
		}
		ev.slotSeen[rl.Off] = true
		if !keep {
			continue
		}
		ev.sites = append(ev.sites, PtrSite{Kind: PtrReloc, Slot: rl.Off, Value: v})
	}
	return nil
}

// dataCellSource finds pointers hiding in initialised data cells
// (position dependent binaries have no relocations).
type dataCellSource struct{}

// Kind implements Source.
func (dataCellSource) Kind() SourceKind { return SourceDataCell }

// Collect implements Source.
func (dataCellSource) Collect(b *bin.Binary, g *cfg.Graph, ev *Evidence) error {
	text := b.Text()
	data := b.Section(bin.SecData)
	if data == nil {
		return nil
	}
	for off := uint64(0); off+8 <= data.Size(); off += 8 {
		slot := data.Addr + off
		if ev.slotSeen[slot] {
			continue
		}
		v := binary.LittleEndian.Uint64(data.Data[off:])
		if !text.Contains(v) {
			continue
		}
		keep, err := ev.validate(g, v, "data cell")
		if err != nil {
			return err
		}
		if !keep {
			continue
		}
		ev.sites = append(ev.sites, PtrSite{Kind: PtrDataCell, Slot: slot, Value: v})
	}
	return nil
}

// codeImmSource finds code-materialised pointers: movimm (X64) and
// movz/movk pairs (fixed-width ISAs).
type codeImmSource struct{}

// Kind implements Source.
func (codeImmSource) Kind() SourceKind { return SourceCodeImm }

// Collect implements Source.
func (codeImmSource) Collect(b *bin.Binary, g *cfg.Graph, ev *Evidence) error {
	text := b.Text()
	for _, f := range g.Funcs {
		if !f.Instrumentable() {
			continue
		}
		for _, blk := range f.Blocks {
			for i, ins := range blk.Instrs {
				switch ins.Kind {
				case arch.MovImm:
					v := uint64(ins.Imm)
					if !text.Contains(v) {
						continue
					}
					keep, err := ev.validate(g, v, "immediate")
					if err != nil {
						return err
					}
					if !keep {
						continue
					}
					ev.sites = append(ev.sites, PtrSite{Kind: PtrCodeImm, Instrs: []uint64{ins.Addr}, Value: v})
				case arch.MovImm16:
					// movz/movk pair materialisation.
					if ins.Shift != 0 || i+1 >= len(blk.Instrs) {
						continue
					}
					next := blk.Instrs[i+1]
					if next.Kind != arch.MovK16 || next.Rd != ins.Rd || next.Shift != 1 {
						continue
					}
					v := uint64(ins.Imm) | uint64(next.Imm)<<16
					if !text.Contains(v) {
						continue
					}
					keep, err := ev.validate(g, v, "movz/movk pair")
					if err != nil {
						return err
					}
					if !keep {
						continue
					}
					ev.sites = append(ev.sites, PtrSite{Kind: PtrCodeImm, Instrs: []uint64{ins.Addr, next.Addr}, Value: v})
				}
			}
		}
	}
	return nil
}
