package analysis

import (
	"encoding/binary"
	"errors"
	"fmt"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
)

// ErrImprecise reports that function pointer identification cannot be
// precise for this binary. Per the safety requirement of Section 5.2,
// modifying an over- or under-approximated pointer set changes program
// behaviour, so func-ptr mode must refuse rather than guess — the
// situation the paper hits with Go's language-specific function tables.
var ErrImprecise = errors.New("analysis: imprecise function pointers")

// PtrSiteKind classifies where a function pointer is defined.
type PtrSiteKind uint8

// Pointer definition sites.
const (
	// PtrReloc is a runtime relocation whose value is a code address
	// (the PIE case Egalito and RetroWrite rely on).
	PtrReloc PtrSiteKind = iota
	// PtrDataCell is an 8-byte initialised data cell holding a code
	// address in position dependent binaries.
	PtrDataCell
	// PtrCodeImm is a code-materialised pointer: a movimm (X64) or a
	// movz/movk pair (fixed-width ISAs) whose composed value is a code
	// address.
	PtrCodeImm
)

// PtrSite is one function pointer definition.
type PtrSite struct {
	Kind PtrSiteKind
	// Slot is the data address being initialised (PtrReloc/PtrDataCell).
	Slot uint64
	// Instrs are the materialising instruction addresses (PtrCodeImm).
	Instrs []uint64
	// Value is the pointer value: a function entry, possibly plus a
	// small delta (the Listing 1 "goexit+1" pattern). The rewriter maps
	// it through the instruction-level relocation map, which is the
	// forward-slicing-tracked rewrite of Section 5.2.
	Value uint64
}

// FuncPointers identifies every function pointer definition in the
// binary, or fails with ErrImprecise when a candidate cannot be
// validated: a code-address-like value that does not land on an
// instruction boundary of its function means the binary manufactures
// code pointers the analysis cannot model (Go function tables).
func FuncPointers(b *bin.Binary, g *cfg.Graph) ([]PtrSite, error) {
	text := b.Text()
	if text == nil {
		return nil, fmt.Errorf("analysis: no text section")
	}
	var sites []PtrSite

	// validate classifies a code-address-like value: keep (a rewritable
	// pointer into relocated code), skip (needs no rewriting: targets
	// stay in place — pointers into unanalysable functions, in-code
	// table data, inter-function padding), or fail (a pointer into
	// relocated code that is not an instruction boundary: rewriting it
	// cannot be precise, so func-ptr mode must refuse).
	validate := func(v uint64, what string) (keep bool, err error) {
		f, ok := g.FuncContaining(v)
		if !ok {
			return false, nil // padding or data-in-text; stays in place
		}
		if !f.Instrumentable() {
			return false, nil // function is not relocated; value stays valid
		}
		if v == f.Entry {
			return true, nil
		}
		for _, dr := range f.DataRanges {
			if v >= dr[0] && v < dr[1] {
				return false, nil // pointer to embedded table data
			}
		}
		blk, ok := f.BlockContaining(v)
		if !ok {
			return false, fmt.Errorf("%w: %s value %#x points into unexplored bytes of %s", ErrImprecise, what, v, f.Name)
		}
		for _, ins := range blk.Instrs {
			if ins.Addr == v {
				return true, nil
			}
		}
		return false, fmt.Errorf("%w: %s value %#x is not an instruction boundary in %s", ErrImprecise, what, v, f.Name)
	}

	slotSeen := map[uint64]bool{}

	// Runtime relocations (PIE).
	for _, rl := range b.Relocs {
		if rl.Kind != bin.RelocRelative {
			continue
		}
		v := uint64(rl.Addend)
		if !text.Contains(v) {
			continue
		}
		keep, err := validate(v, "relocation")
		if err != nil {
			return nil, err
		}
		slotSeen[rl.Off] = true
		if !keep {
			continue
		}
		sites = append(sites, PtrSite{Kind: PtrReloc, Slot: rl.Off, Value: v})
	}

	// Initialised data cells (position dependent binaries have no
	// relocations, so pointers hide in plain data).
	if data := b.Section(bin.SecData); data != nil {
		for off := uint64(0); off+8 <= data.Size(); off += 8 {
			slot := data.Addr + off
			if slotSeen[slot] {
				continue
			}
			v := binary.LittleEndian.Uint64(data.Data[off:])
			if !text.Contains(v) {
				continue
			}
			keep, err := validate(v, "data cell")
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
			sites = append(sites, PtrSite{Kind: PtrDataCell, Slot: slot, Value: v})
		}
	}

	// Code-materialised pointers.
	for _, f := range g.Funcs {
		if !f.Instrumentable() {
			continue
		}
		for _, blk := range f.Blocks {
			for i, ins := range blk.Instrs {
				switch ins.Kind {
				case arch.MovImm:
					v := uint64(ins.Imm)
					if !text.Contains(v) {
						continue
					}
					keep, err := validate(v, "immediate")
					if err != nil {
						return nil, err
					}
					if !keep {
						continue
					}
					sites = append(sites, PtrSite{Kind: PtrCodeImm, Instrs: []uint64{ins.Addr}, Value: v})
				case arch.MovImm16:
					// movz/movk pair materialisation.
					if ins.Shift != 0 || i+1 >= len(blk.Instrs) {
						continue
					}
					next := blk.Instrs[i+1]
					if next.Kind != arch.MovK16 || next.Rd != ins.Rd || next.Shift != 1 {
						continue
					}
					v := uint64(ins.Imm) | uint64(next.Imm)<<16
					if !text.Contains(v) {
						continue
					}
					keep, err := validate(v, "movz/movk pair")
					if err != nil {
						return nil, err
					}
					if !keep {
						continue
					}
					sites = append(sites, PtrSite{Kind: PtrCodeImm, Instrs: []uint64{ins.Addr, next.Addr}, Value: v})
				}
			}
		}
	}
	return sites, nil
}
