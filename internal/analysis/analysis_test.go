package analysis

import (
	"errors"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
)

// switchBinary builds a one-switch program.
func switchBinary(t *testing.T, a arch.Arch, pie bool, nCases int, opts asm.SwitchOpts) (*bin.Binary, *asm.DebugInfo) {
	t.Helper()
	b := asm.New(a, pie)
	f := b.Func("main")
	f.SetFrame(16)
	f.Li(arch.R8, 1)
	cases := make([]asm.Label, nCases)
	for i := range cases {
		cases[i] = f.NewLabel()
	}
	def := f.NewLabel()
	join := f.NewLabel()
	f.Switch(arch.R8, arch.R9, arch.R10, cases, def, opts)
	for i, c := range cases {
		f.Bind(c)
		f.OpI(arch.Add, arch.R3, arch.R3, int64(i+1))
		f.BranchTo(join)
	}
	f.Bind(def)
	f.Bind(join)
	f.Print(arch.R3)
	f.Halt()
	b.SetEntry("main")
	img, dbg, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return img, dbg
}

func analyze(t *testing.T, img *bin.Binary) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(img, NewJumpTables(img))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestJumpTableExactResolution(t *testing.T) {
	for _, a := range arch.All() {
		for _, pie := range []bool{false, true} {
			img, dbg := switchBinary(t, a, pie, 5, asm.SwitchOpts{})
			g := analyze(t, img)
			fn, _ := g.FuncByName("main")
			if fn.Err != nil {
				t.Fatalf("%s pie=%v: analysis failed: %v", a, pie, fn.Err)
			}
			if len(fn.IndirectJumps) != 1 || fn.IndirectJumps[0].Table == nil {
				t.Fatalf("%s pie=%v: jump unresolved", a, pie)
			}
			tbl := fn.IndirectJumps[0].Table
			truth := dbg.Tables[0]
			if tbl.TableAddr != truth.Addr {
				t.Errorf("%s pie=%v: table addr %#x, want %#x", a, pie, tbl.TableAddr, truth.Addr)
			}
			if tbl.EntrySize != truth.EntrySize {
				t.Errorf("%s pie=%v: entry size %d, want %d", a, pie, tbl.EntrySize, truth.EntrySize)
			}
			if !tbl.BoundExact {
				t.Errorf("%s pie=%v: bound not exact despite visible check", a, pie)
			}
			if tbl.Count != truth.N {
				t.Errorf("%s pie=%v: count %d, want %d", a, pie, tbl.Count, truth.N)
			}
			for i, target := range tbl.Targets {
				if target != truth.Targets[i] {
					t.Errorf("%s pie=%v: target[%d] = %#x, want %#x", a, pie, i, target, truth.Targets[i])
				}
			}
			if len(tbl.BaseInstrs) == 0 {
				t.Errorf("%s pie=%v: no base-forming instructions collected", a, pie)
			}
			if a == arch.PPC && !tbl.InText {
				t.Errorf("ppc table not recognised as embedded in code")
			}
			if a == arch.A64 && len(tbl.FuncStartInstrs) == 0 {
				t.Errorf("a64 compressed table without func-start instructions")
			}
		}
	}
}

func TestSpilledIndexFallsBackToBoundExtension(t *testing.T) {
	// Failure 2: the bound is unknown, so Assumption-2 extension kicks
	// in; the result may over-approximate but must never
	// under-approximate (all true targets present).
	for _, a := range arch.All() {
		img, dbg := switchBinary(t, a, false, 4, asm.SwitchOpts{SpillIndex: true})
		g := analyze(t, img)
		fn, _ := g.FuncByName("main")
		if fn.Err != nil {
			t.Fatalf("%s: analysis failed: %v", a, fn.Err)
		}
		tbl := fn.IndirectJumps[0].Table
		if tbl == nil {
			t.Fatalf("%s: jump unresolved", a)
		}
		if tbl.BoundExact {
			t.Errorf("%s: bound claimed exact despite the spill", a)
		}
		truth := dbg.Tables[0]
		if tbl.Count < truth.N {
			t.Errorf("%s: UNDER-approximation: %d entries, truth %d — catastrophic per Section 4.3",
				a, tbl.Count, truth.N)
		}
		for i := 0; i < truth.N; i++ {
			if tbl.Targets[i] != truth.Targets[i] {
				t.Errorf("%s: target[%d] = %#x, want %#x", a, i, tbl.Targets[i], truth.Targets[i])
			}
		}
	}
}

func TestLargeTableAtSectionEndNotTruncated(t *testing.T) {
	// Regression: a table bigger than MaxTableEntries whose bounds check
	// is invisible. The extension limit here comes from the section end
	// (or a boundary hint) — a hard bound — so the MaxTableEntries cap
	// must not apply. Capping silently dropped entries past 512, an
	// under-approximation: indices above the cap kept jumping into the
	// stale original code after rewriting.
	const nCases = MaxTableEntries + 88
	for _, a := range arch.All() {
		img, dbg := switchBinary(t, a, false, nCases, asm.SwitchOpts{SpillIndex: true})
		g := analyze(t, img)
		fn, _ := g.FuncByName("main")
		if fn.Err != nil {
			t.Fatalf("%s: analysis failed: %v", a, fn.Err)
		}
		tbl := fn.IndirectJumps[0].Table
		if tbl == nil {
			t.Fatalf("%s: jump unresolved", a)
		}
		if tbl.BoundExact {
			t.Fatalf("%s: bound claimed exact despite the spill", a)
		}
		truth := dbg.Tables[0]
		if truth.N != nCases {
			t.Fatalf("%s: ground truth has %d entries, want %d", a, truth.N, nCases)
		}
		if tbl.Count < truth.N {
			t.Errorf("%s: UNDER-approximation: %d entries, truth %d — catastrophic per Section 4.3",
				a, tbl.Count, truth.N)
		}
		for i := 0; i < truth.N && i < tbl.Count; i++ {
			if tbl.Targets[i] != truth.Targets[i] {
				t.Fatalf("%s: target[%d] = %#x, want %#x", a, i, tbl.Targets[i], truth.Targets[i])
			}
		}
	}
}

func TestOpaqueBaseIsGracefulFailure(t *testing.T) {
	// Failure 1: the table start cannot be found; the function fails
	// gracefully (Err set), never silently.
	for _, a := range arch.All() {
		img, _ := switchBinary(t, a, false, 4, asm.SwitchOpts{OpaqueBase: true})
		g := analyze(t, img)
		fn, _ := g.FuncByName("main")
		if fn.Err == nil {
			t.Errorf("%s: opaque-base switch did not fail the function", a)
		}
		if len(fn.IndirectJumps) != 1 || fn.IndirectJumps[0].Table != nil {
			t.Errorf("%s: jump should be unresolved", a)
		}
	}
}

func TestAdjacentTablesBoundEachOther(t *testing.T) {
	// Two switches whose bounds checks are hidden: each table must be
	// bounded by the other's start or by known data (Assumption 2), not
	// merged into one giant table.
	for _, a := range arch.All() {
		b := asm.New(a, false)
		f := b.Func("main")
		f.SetFrame(16)
		mk := func() {
			f.Li(arch.R8, 0)
			cases := []asm.Label{f.NewLabel(), f.NewLabel(), f.NewLabel()}
			def := f.NewLabel()
			join := f.NewLabel()
			f.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{SpillIndex: true})
			for _, c := range cases {
				f.Bind(c)
				f.BranchTo(join)
			}
			f.Bind(def)
			f.Bind(join)
		}
		mk()
		mk()
		f.Halt()
		b.SetEntry("main")
		img, dbg, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		g := analyze(t, img)
		fn, _ := g.FuncByName("main")
		if fn.Err != nil {
			t.Fatalf("%s: %v", a, fn.Err)
		}
		if len(fn.IndirectJumps) != 2 {
			t.Fatalf("%s: %d jumps", a, len(fn.IndirectJumps))
		}
		for k, ij := range fn.IndirectJumps {
			if ij.Table == nil {
				t.Fatalf("%s: jump %d unresolved", a, k)
			}
			if ij.Table.Count > MaxTableEntries {
				t.Errorf("%s: table %d ran away: %d entries", a, k, ij.Table.Count)
			}
			// All truth targets present.
			var truth *asm.TableInfo
			for i := range dbg.Tables {
				if dbg.Tables[i].Addr == ij.Table.TableAddr {
					truth = &dbg.Tables[i]
				}
			}
			if truth == nil {
				t.Fatalf("%s: resolved table %#x matches no ground truth", a, ij.Table.TableAddr)
			}
			if ij.Table.Count < truth.N {
				t.Errorf("%s: table %d under-approximated: %d < %d", a, k, ij.Table.Count, truth.N)
			}
		}
	}
}

func TestIndirectTailCallStillInstrumentable(t *testing.T) {
	for _, a := range arch.All() {
		b := asm.New(a, false)
		fin := b.Func("fin")
		fin.Return()
		b.FuncPtrGlobal("fp", "fin", 0)
		f := b.Func("main")
		f.LoadGlobal(arch.R9, arch.R9, "fp", 8)
		f.TailJumpReg(arch.R9)
		b.SetEntry("main")
		img, _, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		g := analyze(t, img)
		fn, _ := g.FuncByName("main")
		if fn.Err != nil {
			t.Errorf("%s: tail-call function failed: %v", a, fn.Err)
		}
		if !fn.IndirectJumps[0].TailCall {
			t.Errorf("%s: not classified as tail call", a)
		}
	}
}

// ptrProgram builds a binary with several kinds of function pointers.
func ptrProgram(a arch.Arch, pie bool, addend int64) *asm.Builder {
	b := asm.New(a, pie)
	callee := b.Func("callee")
	callee.Nop()
	callee.OpI(arch.Add, arch.R0, arch.R1, 1)
	callee.Return()
	b.FuncPtrGlobal("fp", "callee", addend)
	m := b.Func("main")
	m.SetFrame(16)
	// Code-materialised pointer.
	m.LoadGlobalAddr(arch.R9, "callee")
	m.I(arch.Instr{Kind: arch.CallInd, Rs1: arch.R9})
	m.CallPtr(arch.R9, "fp")
	m.Print(arch.R0)
	m.Halt()
	b.SetEntry("main")
	return b
}

func TestFuncPointersFindsSites(t *testing.T) {
	for _, a := range arch.All() {
		for _, pie := range []bool{false, true} {
			img, _, err := ptrProgram(a, pie, 0).Link()
			if err != nil {
				t.Fatal(err)
			}
			g := analyze(t, img)
			sites, err := FuncPointers(img, g)
			if err != nil {
				t.Fatalf("%s pie=%v: %v", a, pie, err)
			}
			kinds := map[PtrSiteKind]int{}
			for _, s := range sites {
				kinds[s.Kind]++
			}
			if pie && kinds[PtrReloc] == 0 {
				t.Errorf("%s pie: no relocation sites found", a)
			}
			if !pie && kinds[PtrDataCell] == 0 {
				t.Errorf("%s nopie: no data cell sites found", a)
			}
			if kinds[PtrCodeImm] == 0 && (!pie || a != arch.X64) {
				// PIE X64 forms addresses with lea, which is PC-relative
				// and needs no rewriting; all other configs materialise.
				if !(pie && a != arch.X64) {
					t.Errorf("%s pie=%v: no code-immediate sites found (%v)", a, pie, kinds)
				}
			}
		}
	}
}

func TestFuncPointersEntryPlusNopBoundary(t *testing.T) {
	// goexit+nopLen points at an instruction boundary: valid.
	for _, a := range arch.All() {
		nop := int64(1)
		if a.FixedWidth() {
			nop = 4
		}
		img, _, err := ptrProgram(a, false, nop).Link()
		if err != nil {
			t.Fatal(err)
		}
		g := analyze(t, img)
		sites, err := FuncPointers(img, g)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		found := false
		for _, s := range sites {
			if s.Kind == PtrDataCell && s.Value != 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: entry+nop pointer cell not identified", a)
		}
	}
}

func TestFuncPointersMidInstructionIsImprecise(t *testing.T) {
	for _, a := range arch.All() {
		img, _, err := ptrProgram(a, false, 2).Link() // entry+2: mid-instruction
		if err != nil {
			t.Fatal(err)
		}
		g := analyze(t, img)
		if _, err := FuncPointers(img, g); !errors.Is(err, ErrImprecise) {
			t.Errorf("%s: err = %v, want ErrImprecise", a, err)
		}
	}
}

func TestBoundaryScanFindsDataAccesses(t *testing.T) {
	img, dbg := switchBinary(t, arch.X64, false, 4, asm.SwitchOpts{})
	jt := NewJumpTables(img)
	// The table base itself must be a boundary (materialised constant),
	// and a boundary hit is a hard bound.
	next, hard := jt.nextBoundary(dbg.Tables[0].Addr - 1)
	if next != dbg.Tables[0].Addr {
		t.Errorf("nextBoundary before table = %#x, want table start %#x", next, dbg.Tables[0].Addr)
	}
	if !hard {
		t.Errorf("boundary-derived limit not reported as hard")
	}
}
