// Package analysis implements the two indirect control flow analyses of
// Section 5: jump-table analysis (intra-procedural) and function-pointer
// analysis (inter-procedural). Both are deliberately honest about their
// limits: jump-table analysis degrades along the paper's failure
// taxonomy (graceful failure, Assumption-2 bound extension, tolerated
// over-approximation) and function-pointer analysis refuses binaries it
// cannot handle precisely rather than mis-rewriting them.
package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
	"icfgpatch/internal/dataflow"
)

// MaxTableEntries caps Assumption-2 bound extension when no hard bound
// (boundary hint or section end) is available. Hard bounds are never
// capped: trimming them would silently drop real table entries.
const MaxTableEntries = 512

// JumpTables is the jump-table resolver plugged into cfg.Build. It keeps
// program-wide boundary hints (known data-access addresses and table
// bases) used to bound tables whose size check could not be recovered,
// per Assumption 2 of the paper.
type JumpTables struct {
	bin *bin.Binary
	// Strict disables Assumption-2 bound extension: tables without a
	// visible bounds check fail (the SRBI-era behaviour the paper
	// improves on).
	Strict bool
	// boundaries are sorted addresses known to start non-table data or
	// another table: PC-relative access targets and materialised
	// constants found anywhere in the code.
	boundaries []uint64
	// rec, when non-nil, accumulates the resolver's read set (see
	// StartRecording). Resolution is serial per binary, so a single
	// slot suffices.
	rec *recording
	// marks, when non-nil, is trusted landing-pad evidence: inexact
	// (Assumption-2) bounds are additionally trimmed at the first
	// unmarked candidate target, since in a trusted-CFI binary every
	// genuine case target carries a marker. Exact bounds are never
	// tightened — they are proven, and tightening could only drop real
	// entries.
	marks *MarkIndex
	// tablesResolved and markBounded attribute the source's work (see
	// Collect): tables successfully resolved, and tables whose inexact
	// bound was trimmed by marker evidence.
	tablesResolved int
	markBounded    int
}

// Kind implements Source.
func (jt *JumpTables) Kind() SourceKind { return SourceJumpTable }

// Collect implements Source: the jump-table source does its real work
// during CFG construction (ResolveJump); Collect deposits the
// attribution it accumulated into the evidence aggregate.
func (jt *JumpTables) Collect(_ *bin.Binary, _ *cfg.Graph, ev *Evidence) error {
	ev.Counts[SourceJumpTable] = jt.tablesResolved
	ev.MarkBoundedTables = jt.markBounded
	return nil
}

// UseMarks engages trusted landing-pad evidence for bound validation.
// Callers must fold the trust decision into any cache identity covering
// resolved tables (core does, via the unit environment string).
func (jt *JumpTables) UseMarks(m *MarkIndex) { jt.marks = m }

// NewJumpTables scans the binary for boundary hints and returns the
// resolver.
func NewJumpTables(b *bin.Binary) *JumpTables {
	jt := &JumpTables{bin: b}
	jt.scanBoundaries()
	return jt
}

// scanBoundaries decodes the text section linearly, collecting every
// address the code forms PC-relatively or materialises as a constant.
// Jump tables never extend past such an address ("we identify non-jump
// table memory accesses and ensure jump tables will not run into other
// jump tables or known non-jump table data").
func (jt *JumpTables) scanBoundaries() {
	text := jt.bin.Text()
	if text == nil {
		return
	}
	seen := map[uint64]bool{}
	addBound := func(a uint64) {
		if !seen[a] {
			seen[a] = true
			jt.boundaries = append(jt.boundaries, a)
		}
	}
	inData := func(a uint64) bool {
		s := jt.bin.SectionAt(a)
		return s != nil
	}
	var pendingPage map[arch.Reg]uint64
	pendingPage = map[arch.Reg]uint64{}
	for _, ins := range arch.DecodeAll(jt.bin.Arch, text.Data, text.Addr) {
		switch ins.Kind {
		case arch.Lea:
			if t, _ := ins.Target(); inData(t) {
				addBound(t)
			}
			delete(pendingPage, ins.Rd)
		case arch.LeaHi:
			t, _ := ins.Target()
			pendingPage[ins.Rd] = t
		case arch.ALUImm, arch.AddImm16:
			isAdd := ins.Kind == arch.AddImm16 || ins.Op == arch.Add
			if isAdd && ins.Rd == ins.Rs1 {
				if page, ok := pendingPage[ins.Rd]; ok && ins.Imm >= 0 && ins.Imm < 4096 {
					if t := page + uint64(ins.Imm); inData(t) {
						addBound(t)
					}
				}
			}
			delete(pendingPage, ins.Rd)
		case arch.MovImm:
			if v := uint64(ins.Imm); inData(v) {
				addBound(v)
			}
			delete(pendingPage, ins.Rd)
		case arch.LoadPC:
			if t := ins.Addr + uint64(ins.Imm); inData(t) {
				addBound(t)
			}
			delete(pendingPage, ins.Rd)
		default:
			if ins.Defs(jt.bin.Arch) != 0 {
				for r := arch.Reg(0); r < arch.NumRegs; r++ {
					if ins.Defs(jt.bin.Arch).Has(r) {
						delete(pendingPage, r)
					}
				}
			}
		}
	}
	sort.Slice(jt.boundaries, func(i, j int) bool { return jt.boundaries[i] < jt.boundaries[j] })
}

// nextBoundary returns the first boundary strictly greater than addr,
// or the end of addr's section. hard reports whether the limit is a
// proven upper bound on the table (a boundary hint or the section end)
// rather than the arbitrary fallback used when addr is outside every
// section. Queries are logged while a recording is active: the answer
// depends on code anywhere in the binary (any function can materialise
// a data address), so reuse of a cached per-function analysis is only
// sound if the new binary answers every recorded query identically.
func (jt *JumpTables) nextBoundary(addr uint64) (limit uint64, hard bool) {
	limit, hard = jt.Boundary(addr)
	if jt.rec != nil {
		jt.rec.bounds[addr] = BoundQuery{Addr: addr, Limit: limit, Hard: hard}
	}
	return limit, hard
}

// Boundary answers a boundary-hint query without recording it: the
// validation-side entry point for replaying a Recording against a new
// binary's resolver.
func (jt *JumpTables) Boundary(addr uint64) (limit uint64, hard bool) {
	limit = uint64(1) << 62
	hard = false
	if s := jt.bin.SectionAt(addr); s != nil {
		limit, hard = s.End(), true
	}
	i := sort.Search(len(jt.boundaries), func(i int) bool { return jt.boundaries[i] > addr })
	if i < len(jt.boundaries) && jt.boundaries[i] < limit {
		return jt.boundaries[i], true
	}
	return limit, hard
}

// ReadSpan is one contiguous byte range the resolver read successfully,
// identified by content: reuse requires the same bytes at the same
// address in the new binary.
type ReadSpan struct {
	Addr uint64
	Len  uint64
	Sum  string // hex sha256 of the bytes read
}

// ReadFail is a table read that failed (unmapped address or section
// overrun). The failure shaped the analysis — an inexact table was
// trimmed there — so reuse requires the read to fail in the new binary
// too.
type ReadFail struct {
	Addr uint64
	Len  uint64
}

// BoundQuery is one boundary-hint lookup and its answer.
type BoundQuery struct {
	Addr  uint64
	Limit uint64
	Hard  bool
}

// Recording is the resolver's read set for one function's analysis:
// everything ResolveJump consulted outside the function's own bytes.
// It is the evidence the delta engine replays to decide whether a
// cached analysis unit is still valid against a new binary version.
type Recording struct {
	Reads  []ReadSpan
	Fails  []ReadFail
	Bounds []BoundQuery
}

// Empty reports whether the recording constrains nothing.
func (r *Recording) Empty() bool {
	return r == nil || (len(r.Reads) == 0 && len(r.Fails) == 0 && len(r.Bounds) == 0)
}

// ValidFor replays the recording against a new binary and its resolver:
// every successful read must observe identical bytes, every failed read
// must still fail, and every boundary query must produce the same
// answer. This is deliberately conservative — any mismatch forces a
// recompute, never a wrong reuse.
func (r *Recording) ValidFor(b *bin.Binary, jt *JumpTables) bool {
	if r == nil {
		return true
	}
	for _, s := range r.Reads {
		data, err := b.ReadAt(s.Addr, s.Len)
		if err != nil || hashBytes(data) != s.Sum {
			return false
		}
	}
	for _, f := range r.Fails {
		if _, err := b.ReadAt(f.Addr, f.Len); err == nil {
			return false
		}
	}
	for _, q := range r.Bounds {
		limit, hard := jt.Boundary(q.Addr)
		if limit != q.Limit || hard != q.Hard {
			return false
		}
	}
	return true
}

// recording accumulates raw events; StartRecording installs one and
// StopRecording compacts it into a Recording.
type recording struct {
	spans  [][2]uint64 // successful reads as [start,end)
	fails  []ReadFail
	bounds map[uint64]BoundQuery
}

// StartRecording begins capturing the resolver's read set. Recordings
// do not nest; the resolver is not safe for concurrent resolution while
// one is active (CFG construction is serial per binary).
func (jt *JumpTables) StartRecording() {
	jt.rec = &recording{bounds: map[uint64]BoundQuery{}}
}

// StopRecording ends capture and returns the compacted read set:
// successful reads merged into maximal per-section spans (a wide table
// is one span, not hundreds of entry-sized records) and content-hashed,
// failures deduplicated, boundary queries sorted.
func (jt *JumpTables) StopRecording() *Recording {
	rec := jt.rec
	jt.rec = nil
	out := &Recording{}
	if rec == nil {
		return out
	}
	sort.Slice(rec.spans, func(i, j int) bool { return rec.spans[i][0] < rec.spans[j][0] })
	var merged [][2]uint64
	for _, sp := range rec.spans {
		n := len(merged)
		if n > 0 && sp[0] <= merged[n-1][1] && sameSection(jt.bin, merged[n-1][0], sp[1]) {
			if sp[1] > merged[n-1][1] {
				merged[n-1][1] = sp[1]
			}
			continue
		}
		merged = append(merged, sp)
	}
	for _, sp := range merged {
		data, err := jt.bin.ReadAt(sp[0], sp[1]-sp[0])
		if err != nil {
			// Individually readable spans only merge within one section,
			// so this cannot happen; record an unmatchable span rather
			// than silently widening reuse.
			out.Fails = append(out.Fails, ReadFail{Addr: sp[0], Len: sp[1] - sp[0]})
			continue
		}
		out.Reads = append(out.Reads, ReadSpan{Addr: sp[0], Len: sp[1] - sp[0], Sum: hashBytes(data)})
	}
	seen := map[ReadFail]bool{}
	for _, f := range rec.fails {
		if !seen[f] {
			seen[f] = true
			out.Fails = append(out.Fails, f)
		}
	}
	sort.Slice(out.Fails, func(i, j int) bool {
		return out.Fails[i].Addr < out.Fails[j].Addr ||
			(out.Fails[i].Addr == out.Fails[j].Addr && out.Fails[i].Len < out.Fails[j].Len)
	})
	for _, q := range rec.bounds {
		out.Bounds = append(out.Bounds, q)
	}
	sort.Slice(out.Bounds, func(i, j int) bool { return out.Bounds[i].Addr < out.Bounds[j].Addr })
	return out
}

// readAt performs a table read through the active recording.
func (jt *JumpTables) readAt(b *bin.Binary, addr, n uint64) ([]byte, error) {
	data, err := b.ReadAt(addr, n)
	if jt.rec != nil {
		if err != nil {
			jt.rec.fails = append(jt.rec.fails, ReadFail{Addr: addr, Len: n})
		} else {
			jt.rec.spans = append(jt.rec.spans, [2]uint64{addr, addr + n})
		}
	}
	return data, err
}

// sameSection reports whether [start,end) lies inside one section.
func sameSection(b *bin.Binary, start, end uint64) bool {
	s := b.SectionAt(start)
	return s != nil && end <= s.End()
}

// hashBytes is the content address of a read span.
func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ResolveJump implements cfg.Resolver: backward slicing from the
// indirect jump, symbolic target expression matching, bound inference,
// and entry decoding with validation.
func (jt *JumpTables) ResolveJump(b *bin.Binary, f *cfg.Func, jumpAddr uint64) (*cfg.ResolvedTable, error) {
	blk, ok := f.BlockContaining(jumpAddr)
	if !ok {
		return nil, fmt.Errorf("analysis: jump at %#x not in a block", jumpAddr)
	}
	jump := blk.Last()
	if jump.Addr != jumpAddr || jump.Kind != arch.JumpInd {
		return nil, fmt.Errorf("analysis: no indirect jump at %#x", jumpAddr)
	}
	slicer := dataflow.NewSlicer(b.Arch, f, b.TOCValue)
	expr := slicer.SliceValue(jumpAddr, jump.Rs1, 96)

	tbl, err := matchTargetExpr(expr, f)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s at %#x: %w", f.Name, jumpAddr, err)
	}
	tbl.JumpAddr = jumpAddr

	// Bound inference: exact when the bounds check is visible, else
	// Assumption-2 extension to the next known boundary.
	var load arch.Instr
	if lb, ok := f.BlockContaining(tbl.LoadAddr); ok {
		for _, ins := range lb.Instrs {
			if ins.Addr == tbl.LoadAddr {
				load = ins
			}
		}
	}
	n, exact := slicer.FindBoundsCheck(tbl.LoadAddr, load.Rs2, 64)
	if !exact && jt.Strict {
		return nil, fmt.Errorf("analysis: %s at %#x: jump table bound not provable (strict mode)", f.Name, jumpAddr)
	}
	if !exact {
		limit, hard := jt.nextBoundary(tbl.TableAddr)
		n = int((limit - tbl.TableAddr) / uint64(tbl.EntrySize))
		// Only cap the extent when no hard bound exists: a boundary- or
		// section-end-derived limit is a proven upper bound, and
		// truncating it would under-approximate the table — the
		// catastrophic failure direction (missed targets become stale
		// jumps into moved code). Over-approximation is safe here
		// because entry decoding below trims at the first implausible
		// target.
		if !hard && n > MaxTableEntries {
			n = MaxTableEntries
		}
	}
	if n <= 0 {
		return nil, fmt.Errorf("analysis: %s at %#x: empty jump table at %#x", f.Name, jumpAddr, tbl.TableAddr)
	}
	tbl.BoundExact = exact

	// Decode and validate entries; inexact bounds trim at the first
	// implausible target instead of failing. Trusted landing-pad
	// evidence tightens the trim: an Assumption-2 candidate that is
	// plausible but unmarked is table overrun, not a case target.
	markTrimmed := false
	for k := 0; k < n; k++ {
		entryAddr := tbl.TableAddr + uint64(k*tbl.EntrySize)
		raw, err := jt.readAt(b, entryAddr, uint64(tbl.EntrySize))
		if err != nil {
			if exact {
				return nil, fmt.Errorf("analysis: %s: table at %#x truncated by section end", f.Name, tbl.TableAddr)
			}
			break
		}
		target, valid := tbl.DecodeEntry(decodeRaw(raw, tbl.Signed))
		if !valid || !plausibleTarget(b, f, tbl, target) {
			if exact {
				return nil, fmt.Errorf("analysis: %s: table entry %d at %#x has implausible target %#x", f.Name, k, tbl.TableAddr, target)
			}
			break
		}
		if !exact && jt.marks != nil && !jt.marks.Marked(target) {
			markTrimmed = true
			break
		}
		tbl.Targets = append(tbl.Targets, target)
	}
	if len(tbl.Targets) == 0 {
		return nil, fmt.Errorf("analysis: %s at %#x: no valid entries at %#x", f.Name, jumpAddr, tbl.TableAddr)
	}
	tbl.Count = len(tbl.Targets)

	// In-text tables are data embedded in code (PPC, Assumption 1).
	txt := b.Text()
	tbl.InText = txt != nil && txt.Contains(tbl.TableAddr)

	// Collect base-forming instructions for cloning.
	collectPatchSites(b.Arch, f, tbl)
	tbl.MarkBounded = markTrimmed
	jt.tablesResolved++
	if markTrimmed {
		jt.markBounded++
	}
	return tbl, nil
}

// decodeRaw reads a little-endian table entry.
func decodeRaw(raw []byte, signed bool) int64 {
	var u uint64
	for i, b := range raw {
		u |= uint64(b) << (8 * i)
	}
	if signed {
		shift := 64 - 8*uint(len(raw))
		return int64(u<<shift) >> shift
	}
	return int64(u)
}

// matchTargetExpr recognises the three tar(x) shapes of Section 5.1.
func matchTargetExpr(e *dataflow.Expr, f *cfg.Func) (*cfg.ResolvedTable, error) {
	switch e.Kind {
	case dataflow.ETableLoad:
		if e.Base == nil || e.Base.Kind != dataflow.EConst {
			return nil, fmt.Errorf("cannot find where the jump table starts (base is %s)", e.Base)
		}
		if e.Size != 8 {
			return nil, fmt.Errorf("sub-word absolute table entries (size %d)", e.Size)
		}
		return &cfg.ResolvedTable{
			LoadAddr:  e.LoadAddr,
			TableAddr: e.Base.Const,
			EntrySize: int(e.Size),
			Signed:    e.Signed,
			Kind:      cfg.TarAbs,
		}, nil
	case dataflow.EAdd:
		// tar(x) = base + load  (table-relative), or
		// tar(x) = funcStart + (load << 2) (A64 compressed).
		a, b := e.A, e.B
		if a.Kind == dataflow.EConst {
			a, b = b, a
		}
		if b.Kind != dataflow.EConst {
			return nil, fmt.Errorf("jump target is %s: untrackable", e)
		}
		switch a.Kind {
		case dataflow.ETableLoad:
			if a.Base == nil || a.Base.Kind != dataflow.EConst {
				return nil, fmt.Errorf("cannot find where the jump table starts (base is %s)", a.Base)
			}
			if a.Base.Const != b.Const {
				return nil, fmt.Errorf("table-relative add base %#x does not match table %#x", b.Const, a.Base.Const)
			}
			return &cfg.ResolvedTable{
				LoadAddr:  a.LoadAddr,
				TableAddr: a.Base.Const,
				EntrySize: int(a.Size),
				Signed:    a.Signed,
				Kind:      cfg.TarTableRel,
			}, nil
		case dataflow.EShl:
			tl := a.A
			if a.Const != 2 || tl == nil || tl.Kind != dataflow.ETableLoad {
				return nil, fmt.Errorf("jump target is %s: untrackable", e)
			}
			if tl.Base == nil || tl.Base.Kind != dataflow.EConst {
				return nil, fmt.Errorf("cannot find where the jump table starts (base is %s)", tl.Base)
			}
			if !f.Contains(b.Const) {
				return nil, fmt.Errorf("compressed table base %#x outside function", b.Const)
			}
			return &cfg.ResolvedTable{
				LoadAddr:  tl.LoadAddr,
				TableAddr: tl.Base.Const,
				EntrySize: int(tl.Size),
				Signed:    tl.Signed,
				Kind:      cfg.TarFuncRel4,
				FuncStart: b.Const,
			}, nil
		}
		return nil, fmt.Errorf("jump target is %s: untrackable", e)
	default:
		return nil, fmt.Errorf("jump target is %s: untrackable", e)
	}
}

// plausibleTarget validates a decoded target the way Section 5.1's
// trimming does: targets must land inside the function (relative forms)
// or inside the code section at instruction alignment (absolute form).
func plausibleTarget(b *bin.Binary, f *cfg.Func, tbl *cfg.ResolvedTable, target uint64) bool {
	if target%b.Arch.InstrAlign() != 0 {
		return false
	}
	switch tbl.Kind {
	case cfg.TarAbs:
		txt := b.Text()
		return txt != nil && txt.Contains(target) && f.Contains(target)
	default:
		return f.Contains(target)
	}
}

// collectPatchSites walks backward from the table read collecting the
// instructions whose immediates form the table base (and, for
// TarFuncRel4, the function-start base), so cloning can retarget them.
func collectPatchSites(a arch.Arch, f *cfg.Func, tbl *cfg.ResolvedTable) {
	blk, ok := f.BlockContaining(tbl.JumpAddr)
	if !ok {
		return
	}
	idx := len(blk.Instrs) - 1
	budget := 96
	matchesTable := func(v uint64) bool { return v == tbl.TableAddr }
	matchesFunc := func(v uint64) bool {
		return tbl.Kind == cfg.TarFuncRel4 && v == tbl.FuncStart
	}
	addSite := func(addr uint64, forFunc bool) {
		if forFunc {
			tbl.FuncStartInstrs = append(tbl.FuncStartInstrs, addr)
		} else {
			tbl.BaseInstrs = append(tbl.BaseInstrs, addr)
		}
	}
	var pagePending map[arch.Reg]bool
	pagePending = map[arch.Reg]bool{}
	for budget > 0 {
		budget--
		idx--
		for idx < 0 {
			if len(blk.Preds) != 1 {
				return
			}
			pb, ok := f.BlockAt(blk.Preds[0])
			if !ok {
				return
			}
			blk = pb
			idx = len(blk.Instrs) - 1
			if idx < 0 {
				idx = -1
			}
		}
		ins := blk.Instrs[idx]
		switch ins.Kind {
		case arch.Lea:
			t, _ := ins.Target()
			if matchesTable(t) {
				addSite(ins.Addr, false)
			} else if matchesFunc(t) {
				addSite(ins.Addr, true)
			}
		case arch.LeaHi:
			t, _ := ins.Target()
			if t == tbl.TableAddr&^0xFFF && pagePending[ins.Rd] {
				addSite(ins.Addr, false)
			}
		case arch.ALUImm, arch.AddImm16:
			isAdd := ins.Kind == arch.AddImm16 || ins.Op == arch.Add
			if isAdd && ins.Rd == ins.Rs1 && uint64(ins.Imm) == tbl.TableAddr&0xFFF {
				addSite(ins.Addr, false)
				pagePending[ins.Rd] = true
			}
		case arch.MovImm:
			if matchesTable(uint64(ins.Imm)) {
				addSite(ins.Addr, false)
			}
		case arch.MovImm16, arch.MovK16:
			chunk := (tbl.TableAddr >> (16 * ins.Shift)) & 0xFFFF
			if uint64(ins.Imm) == chunk {
				addSite(ins.Addr, false)
			}
		}
	}
}
