package icfgpatch_test

import (
	"os/exec"
	"strings"
	"testing"
)

// runGuard executes scripts/benchguard.sh with the given inner command.
func runGuard(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("sh", append([]string{"scripts/benchguard.sh"}, args...)...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestBenchguard pins the Makefile bench targets' failure contract: the
// wrapper must propagate the inner command's failure and must reject
// runs whose output contains no benchmark result line — `go test -bench
// X` exits 0 when X matches nothing, which used to turn bench-warm/
// bench-delta/bench-patch into silent no-ops after a benchmark rename.
func TestBenchguard(t *testing.T) {
	t.Run("passes-with-benchmark-line", func(t *testing.T) {
		out, err := runGuard(t, "printf", "BenchmarkFoo\t10\t100 ns/op\\nPASS\\n")
		if err != nil {
			t.Fatalf("guard rejected a successful benchmark run: %v\n%s", err, out)
		}
	})
	t.Run("fails-on-zero-benchmarks", func(t *testing.T) {
		out, err := runGuard(t, "printf", "PASS\\nok  \\tsomething\\t0.01s\\n")
		if err == nil {
			t.Fatalf("guard accepted a run that matched no benchmarks:\n%s", out)
		}
		if !strings.Contains(out, "no benchmark ran") {
			t.Fatalf("missing diagnostic, got:\n%s", out)
		}
	})
	t.Run("propagates-command-failure", func(t *testing.T) {
		out, err := runGuard(t, "sh", "-c", "echo 'BenchmarkFoo 1 1 ns/op'; exit 3")
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("want exit error despite benchmark line in output, got %v\n%s", err, out)
		}
		if ee.ExitCode() != 3 {
			t.Fatalf("want inner status 3 propagated, got %d\n%s", ee.ExitCode(), out)
		}
	})
	t.Run("guard-match-override", func(t *testing.T) {
		// cluster-guard runs `go test -run TestCluster -v` under the
		// wrapper with GUARD_MATCH='^=== RUN' so a renamed test cannot
		// silently turn the target into a no-op, same as the bench hole.
		cmd := exec.Command("sh", "scripts/benchguard.sh", "printf", "=== RUN   TestClusterByteEquivalence\\nPASS\\n")
		cmd.Env = append(cmd.Environ(), "GUARD_MATCH=^=== RUN")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("guard rejected a matching test run: %v\n%s", err, out)
		}
		cmd = exec.Command("sh", "scripts/benchguard.sh", "printf", "PASS\\nok\\n")
		cmd.Env = append(cmd.Environ(), "GUARD_MATCH=^=== RUN")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("guard accepted a run with no matching test output:\n%s", out)
		}
		if !strings.Contains(string(out), "GUARD_MATCH") {
			t.Fatalf("missing diagnostic, got:\n%s", out)
		}
	})
	t.Run("echoes-inner-output", func(t *testing.T) {
		out, err := runGuard(t, "printf", "BenchmarkBar\t5\t7 ns/op\\n")
		if err != nil {
			t.Fatalf("guard failed: %v", err)
		}
		if !strings.Contains(out, "BenchmarkBar") {
			t.Fatalf("inner output swallowed:\n%s", out)
		}
	})
}
