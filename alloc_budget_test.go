package icfgpatch_test

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"icfgpatch/internal/perf"
)

// latestTrajectory finds the highest-numbered BENCH_<n>.json at the
// repo root — the most recent PR's committed performance snapshot.
func latestTrajectory(t *testing.T) *perf.Trajectory {
	t.Helper()
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	var nums []int
	byNum := map[int]string{}
	for _, m := range matches {
		if g := re.FindStringSubmatch(m); g != nil {
			n, _ := strconv.Atoi(g[1])
			nums = append(nums, n)
			byNum[n] = m
		}
	}
	if len(nums) == 0 {
		t.Skip("no BENCH_*.json snapshot committed yet")
	}
	sort.Ints(nums)
	path := byNum[nums[len(nums)-1]]
	tr, err := perf.Load(path)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	return tr
}

// TestAllocBudget asserts the hot paths stay inside the allocation
// budgets recorded in the committed trajectory snapshot. The budgets
// carry 30% headroom over the measured allocs/op at recording time, so
// a failure here means a real regression in allocation discipline —
// re-examine the change, or re-record the baseline if the growth is
// intentional (and say so in the PR).
func TestAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping allocation measurement in short mode")
	}
	if os.Getenv("ICFG_SKIP_ALLOC_BUDGET") != "" {
		t.Skip("ICFG_SKIP_ALLOC_BUDGET set")
	}
	tr := latestTrajectory(t)
	if len(tr.AllocBudgets) == 0 {
		t.Fatal("snapshot has no alloc_budgets — re-record it")
	}
	measured, err := perf.MeasureBudgetAllocs(3)
	if err != nil {
		t.Fatalf("measuring: %v", err)
	}
	for _, key := range []string{perf.BudgetWarmPatch, perf.BudgetWarmAnalyze, perf.BudgetDeltaAnalyze} {
		budget, ok := tr.AllocBudgets[key]
		if !ok || budget <= 0 {
			t.Errorf("%s: no budget in snapshot", key)
			continue
		}
		got, ok := measured[key]
		if !ok {
			t.Errorf("%s: not measured", key)
			continue
		}
		if got > budget {
			t.Errorf("%s: %.0f allocs/op exceeds budget %.0f", key, got, budget)
		} else {
			t.Logf("%s: %.0f allocs/op within budget %.0f", key, got, budget)
		}
	}
}
