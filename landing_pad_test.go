package icfgpatch_test

// Landing-pad evidence layer tests: the sound func-ptr acceptance the
// evidence layer buys on CFI builds, the CET enforcement of original and
// rewritten binaries, and the degradation contract — marker-less and
// corrupt-marker binaries take the historical conservative path exactly.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/rtlib"
	"icfgpatch/internal/workload"
)

// runCET executes a binary under CET enforcement: every indirect
// transfer must land on an arch.Mark or the emulator faults.
func runCET(t *testing.T, label string, img *bin.Binary, arg uint64) []byte {
	t.Helper()
	lib, err := rtlib.Preload(img)
	if err != nil {
		t.Fatalf("%s: preload: %v", label, err)
	}
	m, err := emu.Load(img, emu.Options{Runtime: lib, Arg: arg, MaxInstrs: 80_000_000, EnforceCET: true})
	if err != nil {
		t.Fatalf("%s: load: %v", label, err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("%s: run under CET enforcement: %v", label, err)
	}
	return res.Output
}

// TestSoundFuncPtrWithLandingPads is the acceptance case: the Go-like
// function-table workload fails ModeFuncPtr with ErrImprecise when built
// without markers, and rewrites soundly — running clean under CET
// enforcement — when built with landing pads, on all three ISAs.
func TestSoundFuncPtrWithLandingPads(t *testing.T) {
	for _, a := range []arch.Arch{arch.X64, arch.PPC, arch.A64} {
		plain, err := workload.GoTable(a)
		if err != nil {
			t.Fatalf("%s: generate: %v", a, err)
		}
		cfi, err := workload.GoTableCFI(a)
		if err != nil {
			t.Fatalf("%s: generate CFI: %v", a, err)
		}
		opts := core.Options{Mode: core.ModeFuncPtr, Request: blockEmpty(), PatchJobs: 1}
		if _, err := core.Rewrite(plain.Binary, opts); !errors.Is(err, core.ErrImpreciseFuncPtrs) {
			t.Fatalf("%s: plain build in func-ptr mode: got %v, want ErrImpreciseFuncPtrs", a, err)
		}
		// NoEvidence must preserve the refusal on the CFI build too.
		noEv := opts
		noEv.NoEvidence = true
		if _, err := core.Rewrite(cfi.Binary, noEv); !errors.Is(err, core.ErrImpreciseFuncPtrs) {
			t.Fatalf("%s: CFI build without evidence: got %v, want ErrImpreciseFuncPtrs", a, err)
		}
		res, err := core.Rewrite(cfi.Binary, opts)
		if err != nil {
			t.Fatalf("%s: CFI build in func-ptr mode: %v", a, err)
		}
		if !res.Stats.EvidenceTrusted {
			t.Fatalf("%s: marker evidence not trusted", a)
		}
		if res.Stats.EvidenceSkips == 0 {
			t.Fatalf("%s: no sound skips recorded; the vtable cell should have been skipped", a)
		}
		if res.Stats.MarkSites == 0 {
			t.Fatalf("%s: no marker sites recorded", a)
		}
		origOut := runCET(t, fmt.Sprintf("%s/original", a), cfi.Binary, 1)
		rewOut := runCET(t, fmt.Sprintf("%s/rewritten", a), res.Binary, 1)
		if !bytes.Equal(origOut, rewOut) {
			t.Fatalf("%s: rewritten output diverges under CET enforcement: %q vs %q", a, origOut, rewOut)
		}
	}
}

// TestRewrittenCFIBinaryPassesCET checks marker preservation through the
// plan/layout/emit and trampoline stages in every mode: a CFI build of
// the jump-table-heavy suite, rewritten in dir/jt/func-ptr modes, runs
// clean under CET enforcement — relocated landing pads stay first at
// their relocMap claims, and trampolines installed over marked blocks
// keep the marker live ([marker][trampoline]).
func TestRewrittenCFIBinaryPassesCET(t *testing.T) {
	progFor := func(a arch.Arch) (*workload.Program, error) {
		if a == arch.X64 {
			// The dispatcher/destructor-heavy big app (X64-only: its
			// command mixing immediate exceeds the fixed-width ALU range).
			return workload.LibxulCFI(a)
		}
		return workload.SPECCFI(a, true, "600.perlbench_s")
	}
	for _, a := range []arch.Arch{arch.X64, arch.PPC, arch.A64} {
		prog, err := progFor(a)
		if err != nil {
			t.Fatalf("%s: generate: %v", a, err)
		}
		origOut := runCET(t, fmt.Sprintf("%s/original", a), prog.Binary, 1)
		for _, mode := range []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr} {
			label := fmt.Sprintf("%s/%s", a, mode)
			res, err := core.Rewrite(prog.Binary, core.Options{Mode: mode, Request: blockEmpty(), PatchJobs: 1})
			if err != nil {
				t.Fatalf("%s: rewrite: %v", label, err)
			}
			out := runCET(t, label, res.Binary, 1)
			if !bytes.Equal(origOut, out) {
				t.Fatalf("%s: rewritten output diverges under CET enforcement", label)
			}
		}
	}
}

// TestMarkerlessByteIdentity is the degradation contract's first half: a
// binary with no markers must rewrite byte-for-byte identically whether
// the evidence layer is enabled or not, across three arches and three
// modes.
func TestMarkerlessByteIdentity(t *testing.T) {
	for _, a := range []arch.Arch{arch.X64, arch.PPC, arch.A64} {
		prog, err := workload.GoTable(a)
		if err != nil {
			t.Fatalf("%s: generate: %v", a, err)
		}
		suite, err := workload.SPECSuiteCached(a, true)
		if err != nil {
			t.Fatalf("%s: suite: %v", a, err)
		}
		for _, b := range []*bin.Binary{prog.Binary, suite[0].Binary} {
			for _, mode := range []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr} {
				label := fmt.Sprintf("%s/%s", a, mode)
				opts := core.Options{Mode: mode, Request: blockEmpty(), PatchJobs: 1}
				withEv, errEv := core.Rewrite(b, opts)
				opts.NoEvidence = true
				without, errNo := core.Rewrite(b, opts)
				if (errEv == nil) != (errNo == nil) {
					t.Fatalf("%s: evidence changes the error outcome on a marker-less binary: %v vs %v", label, errEv, errNo)
				}
				if errEv != nil {
					continue // both refuse identically
				}
				if !bytes.Equal(withEv.Binary.Marshal(), without.Binary.Marshal()) {
					t.Fatalf("%s: marker-less rewrite differs with evidence enabled", label)
				}
			}
		}
	}
}

// TestCorruptMarkersDegrade is the degradation contract's second half: a
// CFI-claiming binary whose marker set fails verification — here a
// marker byte pattern reachable mid-instruction through a pointer cell —
// must degrade to the conservative analysis (refusal in func-ptr mode,
// identical bytes in dir/jt), never trust the markers and never error in
// a new way.
func TestCorruptMarkersDegrade(t *testing.T) {
	prog := corruptMarkerProgram(t)
	for _, mode := range []core.Mode{core.ModeDir, core.ModeJT} {
		opts := core.Options{Mode: mode, Request: blockEmpty(), PatchJobs: 1}
		withEv, err := core.Rewrite(prog, opts)
		if err != nil {
			t.Fatalf("%s: rewrite: %v", mode, err)
		}
		if withEv.Stats.EvidenceTrusted {
			t.Fatalf("%s: corrupt markers were trusted", mode)
		}
		opts.NoEvidence = true
		without, err := core.Rewrite(prog, opts)
		if err != nil {
			t.Fatalf("%s: rewrite without evidence: %v", mode, err)
		}
		if !bytes.Equal(withEv.Binary.Marshal(), without.Binary.Marshal()) {
			t.Fatalf("%s: corrupt-marker rewrite differs from conservative path", mode)
		}
	}
	_, err := core.Rewrite(prog, core.Options{Mode: core.ModeFuncPtr, Request: blockEmpty(), PatchJobs: 1})
	if !errors.Is(err, core.ErrImpreciseFuncPtrs) {
		t.Fatalf("func-ptr mode on corrupt markers: got %v, want the conservative ErrImpreciseFuncPtrs", err)
	}
}

// corruptMarkerProgram builds an X64 CFI-claiming binary whose marker
// evidence fails verification: a pointer cell targets the immediate byte
// of an add instruction whose value (0x1A) happens to be the marker
// opcode, so the "marker" the cell proves reachable sits mid-instruction.
func corruptMarkerProgram(t *testing.T) *bin.Binary {
	t.Helper()
	b := asm.New(arch.X64, false)
	b.SetCFI()
	v := b.Func("victim")
	// Encodes as [04 op rd rs1 1A 00 00 00]: byte +4 of the instruction
	// (entry+5 behind the prologue marker) is the marker opcode.
	v.OpI(arch.Add, arch.R3, arch.R1, 0x1A)
	v.Mov(arch.R0, arch.R3)
	v.Return()
	m := b.Func("main")
	m.SetFrame(32)
	m.Li(arch.R1, 3)
	m.CallF("victim")
	m.Print(arch.R0)
	m.Li(arch.R0, 0)
	m.Halt()
	b.SetEntry("main")
	// The cell "takes the address" of the mid-instruction pseudo-marker.
	b.FuncPtrGlobal("bad.cell", "victim", 5)
	img, _, err := b.Link()
	if err != nil {
		t.Fatalf("linking corrupt-marker program: %v", err)
	}
	if !img.CFI() {
		t.Fatal("program does not claim CFI")
	}
	return img
}
