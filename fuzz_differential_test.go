package icfgpatch_test

// The differential byte-equivalence fuzzer: the repo's central
// correctness claim is that every fast path — staged Analyze+Patch,
// parallel emit, the per-function emit cache, and delta re-analysis via
// the unit store — produces output byte-identical to a serial cold
// Rewrite. The golden tests pin that claim on a handful of fixed
// workloads; the fuzzer searches for counterexamples by generating
// workload programs from fuzzed profile parameters and comparing the
// marshalled images across 3 arches × 3 modes.
//
// Seed corpus regressions live in testdata/fuzz/FuzzDifferentialRewrite;
// `make fuzz-seed` replays them on every `make check`. To hunt for new
// divergences: go test -fuzz FuzzDifferentialRewrite -fuzztime 60s .

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/profile"
	"icfgpatch/internal/workload"
)

// fuzzProfile maps the fuzzer's raw int64s onto a valid workload
// profile. Every input must map to SOME profile (clamping, not
// rejection), or the fuzzer wastes its budget on discarded inputs.
func fuzzProfile(seed, nfuncs, flags, pct int64) workload.Profile {
	clamp := func(v, lo, hi int64) int {
		if v < lo {
			v = lo + (lo-v)%(hi-lo+1)
		}
		if v > hi {
			v = lo + (v-lo)%(hi-lo+1)
		}
		return int(v)
	}
	frac := func(shift uint) float64 {
		// Four independent 0..15 nibbles of pct become 0..0.75 fractions.
		return float64((pct>>shift)&0xf) / 20.0
	}
	p := workload.Profile{
		Name:           fmt.Sprintf("fuzz-%d", seed),
		Seed:           seed,
		Lang:           "c++",
		Funcs:          clamp(nfuncs, 4, 96),
		SwitchFrac:     frac(0),
		SpillFrac:      frac(4),
		OpaqueFrac:     frac(8),
		TinyFrac:       frac(12),
		TailCallFrac:   frac(16),
		DispatcherFrac: frac(20),
		Exceptions:     flags&1 != 0,
		StackCalls:     flags&2 != 0,
		Iters:          3,
	}
	if flags&4 != 0 {
		p.DtorFuncs = clamp(flags>>8, 1, 8)
	}
	if flags&8 != 0 {
		p.Lang = "go"
		p.GoRuntime = true
		p.SwitchFrac, p.SpillFrac, p.OpaqueFrac = 0, 0, 0
	}
	if flags&32 != 0 {
		// The marker lane: a CFI build must hold the same four-path
		// byte-equivalence, and every rewritten output must run clean
		// under CET enforcement.
		p.CFI = true
	}
	return p
}

// fuzzHeatProfile derives an adversarial heat shape from the fuzz
// input: all-hot (every function equal), all-cold (half dead, half at
// the mean), or spike-skewed (one function dominates). The profile is
// built over the analysis's own CFG, so it names real functions.
func fuzzHeatProfile(an *core.Analysis, shape, seed int64) *profile.Profile {
	heat := make(map[uint64]uint64)
	for i, fn := range an.Graph.Funcs {
		switch shape % 3 {
		case 0: // all-hot
			heat[fn.Entry] = 9
		case 1: // all-cold: alternating dead and at-mean
			heat[fn.Entry] = uint64(i % 2)
		default: // spike: one dominant function, chosen by the seed
			if int64(i) == seed%int64(len(an.Graph.Funcs)) {
				heat[fn.Entry] = 1 << 30
			} else {
				heat[fn.Entry] = 1
			}
		}
	}
	return an.ProfileFromHeat("fuzz", heat)
}

// marshalAndRecycle snapshots a result's image, then recycles its
// pooled buffers — deliberately, so the fuzzer also stresses the emit
// pool's reuse discipline: a buffer returned too early or reused
// without a full overwrite shows up as a byte diff on a later run.
func marshalAndRecycle(res *core.Result) []byte {
	img := res.Binary.Marshal()
	res.Recycle()
	return img
}

func diffImages(t *testing.T, label string, want, got []byte) {
	t.Helper()
	if bytes.Equal(want, got) {
		return
	}
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	off := -1
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			off = i
			break
		}
	}
	t.Fatalf("%s: image diverges from serial cold rewrite (len %d vs %d, first diff at byte %d)",
		label, len(want), len(got), off)
}

func FuzzDifferentialRewrite(f *testing.F) {
	// Hand-picked seeds covering the generator's feature axes: plain,
	// switch-heavy, exceptions+stack calls, tiny/dispatcher-heavy,
	// Go-runtime, and destructor-laden profiles.
	f.Add(int64(1), int64(24), int64(0), int64(0x000000), int64(2))
	f.Add(int64(7), int64(40), int64(0), int64(0x00ffff), int64(3))
	f.Add(int64(42), int64(32), int64(3), int64(0x0f0f0f), int64(1))
	f.Add(int64(99), int64(16), int64(0), int64(0xff00ff), int64(4))
	f.Add(int64(1234), int64(20), int64(8), int64(0), int64(2))
	f.Add(int64(555), int64(28), int64(0x0304), int64(0x00f000), int64(5))
	// CFI (landing-pad) builds: switch-heavy and Go-runtime profiles.
	f.Add(int64(77), int64(36), int64(32|2), int64(0x0f00ff), int64(3))
	f.Add(int64(2048), int64(24), int64(32|8), int64(0), int64(1))

	f.Fuzz(func(t *testing.T, seed, nfuncs, flags, pct, k int64) {
		prof := fuzzProfile(seed, nfuncs, flags, pct)
		mutK := int(k%7) + 1
		for _, a := range []arch.Arch{arch.X64, arch.PPC, arch.A64} {
			prog, err := workload.Generate(a, flags&16 != 0, prof)
			if err != nil {
				// Not every fuzzed profile assembles on every arch; that is
				// the generator's contract to report, not a rewrite bug.
				continue
			}
			v2, _, err := workload.MutateVersion(prog.Binary, mutK, seed^0x5eed)
			if err != nil {
				continue
			}
			// Marker lane: pin the original builds' CET-enforced outputs;
			// every rewritten output below must reproduce them while
			// keeping every indirect transfer on a landing pad.
			var origCET, v2CET []byte
			if prof.CFI {
				origCET = runCET(t, a.String()+"/original", prog.Binary, 1)
				v2CET = runCET(t, a.String()+"/v2-original", v2, 1)
			}
			assertCET := func(label string, want []byte, res *core.Result) {
				if !prof.CFI {
					return
				}
				if got := runCET(t, label, res.Binary, 1); !bytes.Equal(want, got) {
					t.Fatalf("%s: output diverges under CET enforcement", label)
				}
			}
			for _, mode := range []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr} {
				label := fmt.Sprintf("%s/%s", a, mode)
				opts := core.Options{Mode: mode, Request: blockEmpty(), PatchJobs: 1}

				// Baseline: serial cold rewrite.
				coldRes, err := core.Rewrite(prog.Binary, opts)
				if err != nil {
					if errors.Is(err, core.ErrImpreciseFuncPtrs) {
						continue // mode refuses the binary; nothing to compare
					}
					t.Fatalf("%s: cold rewrite: %v", label, err)
				}
				assertCET(label+"/cold-cet", origCET, coldRes)
				cold := marshalAndRecycle(coldRes)

				// Staged path, parallel emit.
				an, err := core.Analyze(prog.Binary, core.AnalysisConfig{Mode: mode})
				if err != nil {
					t.Fatalf("%s: analyze: %v", label, err)
				}
				par := opts
				par.PatchJobs = 4
				res, err := an.Patch(par)
				if err != nil {
					t.Fatalf("%s: parallel patch: %v", label, err)
				}
				diffImages(t, label+"/parallel", cold, marshalAndRecycle(res))

				// Repeat patch: the emit-cache hit path.
				res, err = an.Patch(par)
				if err != nil {
					t.Fatalf("%s: repeat patch: %v", label, err)
				}
				if res.Metrics.PatchFuncsReused == 0 && res.Metrics.PatchFuncsReencoded > 0 {
					t.Fatalf("%s: repeat patch hit no emit cache (%d re-encoded)",
						label, res.Metrics.PatchFuncsReencoded)
				}
				diffImages(t, label+"/emit-cache", cold, marshalAndRecycle(res))

				// Delta path on the mutated version vs its own cold rewrite.
				coldV2Res, err := core.Rewrite(v2, opts)
				if err != nil {
					if errors.Is(err, core.ErrImpreciseFuncPtrs) {
						continue
					}
					t.Fatalf("%s: cold v2 rewrite: %v", label, err)
				}
				assertCET(label+"/cold-v2-cet", v2CET, coldV2Res)
				coldV2 := marshalAndRecycle(coldV2Res)
				units := core.NewUnitStore(0)
				if _, err := core.Analyze(prog.Binary, core.AnalysisConfig{Mode: mode, Units: units}); err != nil {
					t.Fatalf("%s: seeding unit store: %v", label, err)
				}
				anV2, err := core.Analyze(v2, core.AnalysisConfig{Mode: mode, Units: units})
				if err != nil {
					t.Fatalf("%s: delta analyze: %v", label, err)
				}
				res, err = anV2.Patch(par)
				if err != nil {
					t.Fatalf("%s: delta patch: %v", label, err)
				}
				diffImages(t, label+"/delta", coldV2, marshalAndRecycle(res))

				// Profile-guided lane: an adversarial heat shape derived
				// from the fuzz input must hold the same four-path
				// byte-equivalence — serial ≡ parallel ≡ emit-cache ≡ delta
				// — and diverge from the unguided output only when the plan
				// actually assigned variants.
				gopts := opts
				gopts.Request = blockCounter()
				gopts.Profile = fuzzHeatProfile(an, k, seed)
				gcoldRes, err := core.Rewrite(prog.Binary, gopts)
				if err != nil {
					t.Fatalf("%s: guided cold rewrite: %v", label, err)
				}
				variants := gcoldRes.Stats.VariantFuncs
				assertCET(label+"/guided-cold-cet", origCET, gcoldRes)
				gcold := marshalAndRecycle(gcoldRes)
				gpar := gopts
				gpar.PatchJobs = 4
				res, err = an.Patch(gpar)
				if err != nil {
					t.Fatalf("%s: guided parallel patch: %v", label, err)
				}
				diffImages(t, label+"/guided-parallel", gcold, marshalAndRecycle(res))
				res, err = an.Patch(gpar)
				if err != nil {
					t.Fatalf("%s: guided repeat patch: %v", label, err)
				}
				diffImages(t, label+"/guided-emit-cache", gcold, marshalAndRecycle(res))
				gv2Res, err := core.Rewrite(v2, gopts)
				if err != nil {
					t.Fatalf("%s: guided cold v2 rewrite: %v", label, err)
				}
				gv2 := marshalAndRecycle(gv2Res)
				res, err = anV2.Patch(gpar)
				if err != nil {
					t.Fatalf("%s: guided delta patch: %v", label, err)
				}
				diffImages(t, label+"/guided-delta", gv2, marshalAndRecycle(res))

				// Guided-vs-unguided divergence tracks the plan exactly:
				// bytes differ iff variants were assigned. A trivial profile
				// must reproduce the unguided bytes to the last byte.
				uopts := gopts
				uopts.Profile = nil
				ucoldRes, err := core.Rewrite(prog.Binary, uopts)
				if err != nil {
					t.Fatalf("%s: unguided counter rewrite: %v", label, err)
				}
				ucold := marshalAndRecycle(ucoldRes)
				if (variants > 0) == bytes.Equal(gcold, ucold) {
					t.Fatalf("%s: guided output %s unguided, but plan assigned %d variants",
						label, eqWord(bytes.Equal(gcold, ucold)), variants)
				}
				topts := gopts
				topts.Profile = &profile.Profile{Arch: a}
				tcoldRes, err := core.Rewrite(prog.Binary, topts)
				if err != nil {
					t.Fatalf("%s: trivial-profile rewrite: %v", label, err)
				}
				diffImages(t, label+"/trivial-profile", ucold, marshalAndRecycle(tcoldRes))
			}
		}
	})
}

func eqWord(eq bool) string {
	if eq {
		return "matches"
	}
	return "differs from"
}

func blockCounter() instrument.Request {
	return instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter}
}

// TestFuzzProfileTotal pins the clamping contract: any int64 quadruple
// maps to a generatable profile (no fuzzer budget burned on rejects).
func TestFuzzProfileTotal(t *testing.T) {
	for _, c := range [][4]int64{
		{0, 0, 0, 0},
		{-1, -1, -1, -1},
		{1 << 62, -(1 << 62), 1<<63 - 1, -1 << 63},
		{17, 1000000, 0xffff, 0x123456},
	} {
		p := fuzzProfile(c[0], c[1], c[2], c[3])
		if p.Funcs < 4 || p.Funcs > 96 {
			t.Fatalf("fuzzProfile(%v).Funcs = %d out of range", c, p.Funcs)
		}
		for _, fr := range []float64{p.SwitchFrac, p.SpillFrac, p.OpaqueFrac, p.TinyFrac, p.TailCallFrac, p.DispatcherFrac} {
			if fr < 0 || fr > 0.76 {
				t.Fatalf("fuzzProfile(%v) fraction %v out of range", c, fr)
			}
		}
		if _, err := workload.Generate(arch.X64, false, p); err != nil {
			t.Fatalf("fuzzProfile(%v) does not generate: %v", c, err)
		}
	}
}
