// Package icfgpatch_test holds the benchmark harness: one benchmark per
// table and figure of the paper's evaluation. The benchmarks execute the
// same pipelines as cmd/icfg-experiments and report the paper's metrics
// (cycle overhead percentages, trap counts, speedups) via b.ReportMetric,
// so `go test -bench=. -benchmem` regenerates every result.
package icfgpatch_test

import (
	"sync"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/baseline"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/experiments"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
	"icfgpatch/internal/workload"
)

// blockEmpty is the paper's Table 3 instrumentation request.
func blockEmpty() instrument.Request {
	return instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty}
}

// mustRun executes a binary with the runtime library preloaded.
func mustRun(b *testing.B, img *bin.Binary, arg uint64) emu.Result {
	b.Helper()
	lib, err := rtlib.Preload(img)
	if err != nil {
		b.Fatal(err)
	}
	m, err := emu.Load(img, emu.Options{Runtime: lib, Arg: arg})
	if err != nil {
		b.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1Capabilities regenerates the qualitative comparison
// (paper Table 1).
func BenchmarkTable1Capabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := baseline.Table1(); len(rows) != 7 {
			b.Fatal("table 1 shape")
		}
	}
}

// BenchmarkTable2Trampolines constructs and encodes every trampoline
// form of paper Table 2 on all three architectures.
func BenchmarkTable2Trampolines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, a := range arch.All() {
			if tr, ok := arch.NewShortTrampoline(a, 0x10000, 0x10040); ok {
				if _, err := tr.Encode(a); err != nil {
					b.Fatal(err)
				}
			}
			if tr, ok := arch.NewLongTrampoline(a, 0x10000, 0x5000000, arch.R9, 0x10008000); ok {
				if _, err := tr.Encode(a); err != nil {
					b.Fatal(err)
				}
			}
			tr := arch.NewTrapTrampoline(a, 0x10000, 0x5000000)
			if _, err := tr.Encode(a); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// table3Fixture caches one representative SPEC-like benchmark per
// architecture with its rewrites.
type table3Fixture struct {
	orig emu.Result
	imgs map[string]*bin.Binary
}

var (
	table3Once sync.Once
	table3     map[arch.Arch]*table3Fixture
)

func table3Setup(b *testing.B) map[arch.Arch]*table3Fixture {
	b.Helper()
	table3Once.Do(func() {
		table3 = map[arch.Arch]*table3Fixture{}
		for _, a := range arch.All() {
			suite, err := workload.SPECSuiteCached(a, false)
			if err != nil {
				panic(err)
			}
			p := suite[0] // 600.perlbench_s: switch- and call-heavy
			fx := &table3Fixture{imgs: map[string]*bin.Binary{}}
			m, err := emu.Load(p.Binary, emu.Options{})
			if err != nil {
				panic(err)
			}
			fx.orig, err = m.Run()
			if err != nil {
				panic(err)
			}
			gap := uint64(0)
			if a == arch.PPC {
				gap = 40 << 20
			}
			for _, mode := range []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr} {
				rw, err := core.Rewrite(p.Binary, core.Options{Mode: mode, Request: blockEmpty(), Verify: true, InstrGap: gap})
				if err != nil {
					panic(err)
				}
				fx.imgs[mode.String()] = rw.Binary
			}
			if srbi, err := baseline.SRBI(p.Binary, baseline.SRBIOptions{Request: blockEmpty(), Verify: true, InstrGap: gap}); err == nil {
				fx.imgs["SRBI"] = srbi.Binary
			}
			table3[a] = fx
		}
	})
	return table3
}

// BenchmarkTable3SPEC measures the block-level empty instrumentation
// overhead (paper Table 3) of each approach on a representative
// benchmark, per architecture. The reported overhead_pct metric is the
// paper's "time overhead" column.
func BenchmarkTable3SPEC(b *testing.B) {
	fixtures := table3Setup(b)
	for _, a := range arch.All() {
		fx := fixtures[a]
		for _, name := range []string{"SRBI", "dir", "jt", "func-ptr"} {
			img := fx.imgs[name]
			if img == nil {
				continue
			}
			b.Run(a.String()+"/"+name, func(b *testing.B) {
				var last emu.Result
				for i := 0; i < b.N; i++ {
					last = mustRun(b, img, 0)
				}
				ovh := 100 * (float64(last.Cycles)/float64(fx.orig.Cycles) - 1)
				b.ReportMetric(ovh, "overhead_%")
				b.ReportMetric(float64(last.Traps), "traps")
			})
		}
	}
}

// BenchmarkTable3Rewrite measures the rewriter's own throughput (bytes
// of text rewritten per second) — the cost of running the tool, not of
// the rewritten binary — and reports the per-pass metrics of the last
// rewrite (stage shares in milliseconds, scratch bytes harvested).
func BenchmarkTable3Rewrite(b *testing.B) {
	for _, a := range arch.All() {
		suite, err := workload.SPECSuiteCached(a, false)
		if err != nil {
			b.Fatal(err)
		}
		p := suite[1] // 602.gcc_s, the largest
		b.Run(a.String(), func(b *testing.B) {
			b.SetBytes(int64(p.Binary.Text().Size()))
			var last *core.Result
			for i := 0; i < b.N; i++ {
				res, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeJT, Request: blockEmpty(), Verify: true})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			mx := last.Metrics
			for _, st := range mx.Stages {
				b.ReportMetric(float64(st.Wall.Microseconds())/1000, st.Name+"_ms")
			}
			b.ReportMetric(float64(mx.ScratchBytesHarvested), "scratch_bytes")
			b.ReportMetric(float64(mx.TrampolineTotal()), "trampolines")
		})
	}
}

// BenchmarkTable3Sweep compares the serial Table 3 runner against the
// worker-pool pipeline over the full (benchmark, approach) grid of one
// architecture. On a multi-core machine the parallel sub-benchmark's
// wall clock drops with the worker count; the outputs are asserted
// byte-identical either way.
func BenchmarkTable3Sweep(b *testing.B) {
	// Warm the workload cache so both sub-benchmarks measure the sweep,
	// not suite generation.
	if _, err := workload.SPECSuiteCached(arch.A64, false); err != nil {
		b.Fatal(err)
	}
	var serialOut, parallelOut string
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := experiments.Table3ForArch(arch.A64)
			if err != nil {
				b.Fatal(err)
			}
			serialOut = res.Render()
		}
	})
	b.Run("parallel", func(b *testing.B) {
		jobs := experiments.DefaultJobs()
		b.ReportMetric(float64(jobs), "jobs")
		for i := 0; i < b.N; i++ {
			res, err := experiments.Table3ForArchParallel(arch.A64, jobs)
			if err != nil {
				b.Fatal(err)
			}
			parallelOut = res.Render()
		}
	})
	if serialOut != "" && parallelOut != "" && serialOut != parallelOut {
		b.Fatal("parallel sweep output diverged from serial")
	}
}

// BenchmarkFirefoxLibxul drives the Section 8.2 libxul.so workloads
// through the jt and func-ptr rewrites.
func BenchmarkFirefoxLibxul(b *testing.B) {
	p, err := workload.LibxulCached(arch.X64)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []core.Mode{core.ModeJT, core.ModeFuncPtr} {
		rw, err := core.Rewrite(p.Binary, core.Options{Mode: mode, Request: blockEmpty(), Verify: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.String(), func(b *testing.B) {
			m0, err := emu.Load(p.Binary, emu.Options{Arg: workload.CmdLatencyBenchmark})
			if err != nil {
				b.Fatal(err)
			}
			orig, err := m0.Run()
			if err != nil {
				b.Fatal(err)
			}
			// The baseline run above is setup, not the measurement.
			b.ResetTimer()
			var last emu.Result
			for i := 0; i < b.N; i++ {
				last = mustRun(b, rw.Binary, workload.CmdLatencyBenchmark)
			}
			b.ReportMetric(100*(float64(last.Cycles)/float64(orig.Cycles)-1), "latency_overhead_%")
		})
	}
}

// BenchmarkRewriteWarmVsCold measures the rewrite-as-a-service win on
// the libxul-like workload: a cold end-to-end Rewrite against a warm
// Patch on a cached analysis (the icfg-serve hit path). The speedup_x
// metric is the warm-path multiplier; the warm output is asserted
// byte-identical to the cold one.
func BenchmarkRewriteWarmVsCold(b *testing.B) {
	p, err := workload.LibxulCached(arch.X64)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Mode: core.ModeJT, Request: blockEmpty()}

	var cold, warm float64
	var coldImg, warmImg []byte
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Rewrite(p.Binary, opts)
			if err != nil {
				b.Fatal(err)
			}
			if coldImg == nil {
				// Marshalling the identity-check image is not rewrite work.
				b.StopTimer()
				coldImg = res.Binary.Marshal()
				b.StartTimer()
			}
		}
		cold = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("warm", func(b *testing.B) {
		an, err := core.Analyze(p.Binary, core.AnalysisConfig{Mode: opts.Mode})
		if err != nil {
			b.Fatal(err)
		}
		// Prime the lazy per-function placements so the steady-state hit
		// path is measured, as on a served analysis after its first patch.
		res, err := an.Patch(opts)
		if err != nil {
			b.Fatal(err)
		}
		warmImg = res.Binary.Marshal()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := an.Patch(opts); err != nil {
				b.Fatal(err)
			}
		}
		warm = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if cold > 0 && warm > 0 {
			b.ReportMetric(cold/warm, "speedup_x")
		}
	})
	if coldImg != nil && warmImg != nil && string(coldImg) != string(warmImg) {
		b.Fatal("warm patch output diverged from cold rewrite")
	}
}

// BenchmarkPatchParallel measures the staged pipeline's parallel plan
// and emit stages on the libxul-like workload: the same warmed analysis
// patched on a 1-worker versus 4-worker pool. Each iteration alternates
// between two instrumentation requests so the per-unit emit caches never
// hit — every Patch re-plans and re-encodes the full function set, which
// is exactly the work the pool parallelises. The speedup_x metric is the
// parallel multiplier; outputs are asserted byte-identical across pools.
func BenchmarkPatchParallel(b *testing.B) {
	p, err := workload.LibxulCached(arch.X64)
	if err != nil {
		b.Fatal(err)
	}
	// The two requests differ in payload, not just placement: counter
	// snippets insert instructions into every unit, so the alternation
	// changes each unit's plan and its emit signature with it.
	reqs := [2]instrument.Request{
		{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
		{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter},
	}
	var elapsed [2]float64
	var imgs [2][2][]byte // [pool][request]
	for bi, jobs := range []int{1, 4} {
		b.Run(map[int]string{1: "jobs=1", 4: "jobs=4"}[jobs], func(b *testing.B) {
			an, err := core.Analyze(p.Binary, core.AnalysisConfig{Mode: core.ModeJT})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := an.Patch(core.Options{Mode: core.ModeJT, Request: reqs[i%2], PatchJobs: jobs})
				if err != nil {
					b.Fatal(err)
				}
				if res.Metrics.PatchFuncsReused != 0 {
					b.Fatalf("emit cache hit (%d funcs) defeated the measurement", res.Metrics.PatchFuncsReused)
				}
				if imgs[bi][i%2] == nil {
					// Marshalling the identity-check image is not patch work.
					b.StopTimer()
					imgs[bi][i%2] = res.Binary.Marshal()
					b.StartTimer()
				}
			}
			elapsed[bi] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if bi == 1 && elapsed[0] > 0 && elapsed[1] > 0 {
				b.ReportMetric(elapsed[0]/elapsed[1], "speedup_x")
			}
		})
	}
	for ri := 0; ri < 2; ri++ {
		if imgs[0][ri] != nil && imgs[1][ri] != nil && string(imgs[0][ri]) != string(imgs[1][ri]) {
			b.Fatal("parallel patch output diverged from serial")
		}
	}
}

// BenchmarkDeltaVsCold measures the function-granular delta path on a
// version pair: v2 mutates 3 functions of the libxul-like workload, and
// the delta sub-benchmark re-analyzes v2 against a unit store warmed on
// v1, reusing every unchanged function. The speedup_x metric is the
// delta multiplier over a cold v2 rewrite; outputs are asserted
// byte-identical.
func BenchmarkDeltaVsCold(b *testing.B) {
	p, err := workload.LibxulCached(arch.X64)
	if err != nil {
		b.Fatal(err)
	}
	v1 := p.Binary
	v2, _, err := workload.MutateVersion(v1, 3, 17)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Mode: core.ModeJT, Request: blockEmpty()}

	var cold, delta float64
	var coldImg, deltaImg []byte
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Rewrite(v2, opts)
			if err != nil {
				b.Fatal(err)
			}
			if coldImg == nil {
				b.StopTimer()
				coldImg = res.Binary.Marshal()
				b.StartTimer()
			}
		}
		cold = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("delta", func(b *testing.B) {
		units := core.NewUnitStore(0)
		if _, err := core.Analyze(v1, core.AnalysisConfig{Mode: opts.Mode, Units: units}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var reused, recomputed int
		for i := 0; i < b.N; i++ {
			an, err := core.Analyze(v2, core.AnalysisConfig{Mode: opts.Mode, Units: units})
			if err != nil {
				b.Fatal(err)
			}
			res, err := an.Patch(opts)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				// Later iterations find v2's own units already stored; the
				// first is the real v1 -> v2 delta.
				reused, recomputed = an.Delta.Reused, an.Delta.Recomputed
			}
			if deltaImg == nil {
				// StopTimer, not post-loop marshalling: the first iteration
				// is the real v1 -> v2 delta, so it must stay in the loop.
				b.StopTimer()
				deltaImg = res.Binary.Marshal()
				b.StartTimer()
			}
		}
		delta = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(reused), "funcs_reused")
		b.ReportMetric(float64(recomputed), "funcs_recomputed")
		if cold > 0 && delta > 0 {
			b.ReportMetric(cold/delta, "speedup_x")
		}
	})
	if coldImg != nil && deltaImg != nil && string(coldImg) != string(deltaImg) {
		b.Fatal("delta rewrite output diverged from cold rewrite")
	}
}

// BenchmarkDockerGo drives the Section 8.2 Docker experiment's "run"
// command through the jt rewrite with Go runtime RA translation.
func BenchmarkDockerGo(b *testing.B) {
	p, err := workload.DockerCached(arch.X64)
	if err != nil {
		b.Fatal(err)
	}
	rw, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeJT, Request: blockEmpty(), Verify: true})
	if err != nil {
		b.Fatal(err)
	}
	m0, err := emu.Load(p.Binary, emu.Options{Arg: 2})
	if err != nil {
		b.Fatal(err)
	}
	orig, err := m0.Run()
	if err != nil {
		b.Fatal(err)
	}
	// The rewrite and baseline run above are setup, not the measurement.
	b.ResetTimer()
	var last emu.Result
	for i := 0; i < b.N; i++ {
		last = mustRun(b, rw.Binary, 2)
	}
	b.ReportMetric(100*(float64(last.Cycles)/float64(orig.Cycles)-1), "overhead_%")
	b.ReportMetric(float64(last.Walks), "gc_walks")
}

// BenchmarkBOLTComparison performs the Section 8.3 block-reordering
// transformation with the incremental rewriter (the configuration that
// works on all benchmarks) and runs the result.
func BenchmarkBOLTComparison(b *testing.B) {
	suite, err := workload.SPECSuiteCached(arch.X64, true)
	if err != nil {
		b.Fatal(err)
	}
	p := suite[0]
	req := instrument.Request{Where: instrument.FuncEntry, Payload: instrument.PayloadEmpty}
	rw, err := core.Rewrite(p.Binary, core.Options{
		Mode: core.ModeJT, Request: req, Verify: true,
		Variant: core.Variant{ReverseBlocks: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	// The rewrite above is setup, not the measurement.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRun(b, rw.Binary, 0)
	}
	b.ReportMetric(100*rw.Stats.SizeIncrease(), "size_increase_%")
}

// BenchmarkDiogenesCaseStudy runs the Section 9 identification test under
// both rewrites; the speedup metric is the paper's 60x headline.
func BenchmarkDiogenesCaseStudy(b *testing.B) {
	res, err := experiments.Diogenes()
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.LibcudaCached(arch.X64)
	if err != nil {
		b.Fatal(err)
	}
	targets := workload.DiogenesTargets(p, 70)
	rw, err := core.Rewrite(p.Binary, core.Options{
		Mode:    core.ModeJT,
		Request: instrument.Request{Where: instrument.FuncEntry, Payload: instrument.PayloadCounter, Funcs: targets},
		Verify:  true,
	})
	if err != nil {
		b.Fatal(err)
	}
	// The Diogenes pipeline and rewrite above are setup, not the
	// measurement.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRun(b, rw.Binary, 0)
	}
	b.ReportMetric(res.Speedup, "speedup_x")
	b.ReportMetric(float64(res.MainstreamTraps), "mainstream_traps")
}

// BenchmarkFigure2FailureModes exercises the failure-mode pipeline.
func BenchmarkFigure2FailureModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if !res.UnderApproxDetected {
			b.Fatal("under-approximation undetected")
		}
	}
}

// BenchmarkAblation runs the design-choice ablation study (DESIGN.md's
// per-experiment index) on the trampoline-stressed PPC configuration.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(arch.PPC)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Name == "- superblocks" {
				b.ReportMetric(float64(row.Traps), "traps_without_superblocks")
			}
		}
	}
}
