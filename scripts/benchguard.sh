#!/bin/sh
# benchguard runs a `go test -bench` command and fails loudly when the
# benchmark run errors OR matches zero benchmarks. `go test -bench X`
# exits 0 when X matches nothing, so a renamed benchmark silently turns
# a Makefile bench target into a no-op; this wrapper closes that hole.
#
# GUARD_MATCH overrides the required output pattern (grep regex,
# default '^Benchmark'), so the same zero-matched guard protects test
# targets too: GUARD_MATCH='^=== RUN' guards `go test -run X -v`
# against X matching nothing.
#
# Usage: scripts/benchguard.sh go test -run '^$' -bench Foo ...
set -u

match="${GUARD_MATCH:-^Benchmark}"

out=$("$@" 2>&1)
status=$?
printf '%s\n' "$out"
if [ $status -ne 0 ]; then
    echo "benchguard: command failed with status $status" >&2
    exit $status
fi
if ! printf '%s\n' "$out" | grep -q "$match"; then
    if [ "$match" = '^Benchmark' ]; then
        echo "benchguard: no benchmark ran (pattern matched nothing?)" >&2
    else
        echo "benchguard: output matched nothing for GUARD_MATCH=$match (pattern matched nothing?)" >&2
    fi
    exit 1
fi
