#!/bin/sh
# benchguard runs a `go test -bench` command and fails loudly when the
# benchmark run errors OR matches zero benchmarks. `go test -bench X`
# exits 0 when X matches nothing, so a renamed benchmark silently turns
# a Makefile bench target into a no-op; this wrapper closes that hole.
#
# Usage: scripts/benchguard.sh go test -run '^$' -bench Foo ...
set -u

out=$("$@" 2>&1)
status=$?
printf '%s\n' "$out"
if [ $status -ne 0 ]; then
    echo "benchguard: command failed with status $status" >&2
    exit $status
fi
if ! printf '%s\n' "$out" | grep -q '^Benchmark'; then
    echo "benchguard: no benchmark ran (pattern matched nothing?)" >&2
    exit 1
fi
