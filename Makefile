GO ?= go

# BENCHGUARD wraps the bench targets so they fail loudly when the
# benchmark run errors or the pattern matches zero benchmarks (a plain
# `go test -bench X` exits 0 on both).
BENCHGUARD = sh scripts/benchguard.sh

# BENCH_BASELINE is the committed performance-trajectory snapshot
# bench-compare gates against; bench-record overwrites it.
BENCH_BASELINE ?= BENCH_10.json
BENCH_PR ?= 10

.PHONY: build test short race vet fmt fmt-check bench fuzz-seed bench-warm bench-delta bench-patch obs-guard delta-guard patch-guard alloc-guard cluster-guard batch-guard profile-guard landing-guard bench-record bench-compare check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem .

# fuzz-seed replays every fuzz target's seed corpus as regular tests
# (no fuzzing engine — fast and deterministic).
fuzz-seed:
	$(GO) test -run Fuzz ./...

# bench-warm smoke-tests the rewrite-as-a-service warm path: a few
# iterations of warm Patch vs cold Rewrite, asserting byte-identical
# output and reporting the speedup multiplier.
bench-warm:
	$(BENCHGUARD) $(GO) test -run '^$$' -bench BenchmarkRewriteWarmVsCold -benchtime 3x .

# bench-delta smoke-tests the function-granular delta path: v2 mutates
# a few functions, the delta re-analysis reuses the rest, and the output
# is asserted byte-identical to a cold v2 rewrite.
bench-delta:
	$(BENCHGUARD) $(GO) test -run '^$$' -bench BenchmarkDeltaVsCold -benchtime 3x .

# bench-patch smoke-tests the parallel emit pipeline: the same analysis
# patched on a 1-worker vs 4-worker pool with the emit caches defeated,
# asserting byte-identical output and reporting the speedup multiplier
# (>1x needs more than one CPU).
bench-patch:
	$(BENCHGUARD) $(GO) test -run '^$$' -bench BenchmarkPatchParallel -benchtime 3x .

# obs-guard verifies the tracing instrumentation stays within its 2%
# overhead budget on the warm patch path (see obs_overhead_test.go).
obs-guard:
	$(GO) test -run TestObsOverheadGuard .

# delta-guard asserts — by counters, not timing — that a K-function
# mutation recomputes at most the changed functions plus their
# dependency-index dependents (see TestDeltaRecomputeBound).
delta-guard:
	$(GO) test -run TestDeltaRecomputeBound -v ./internal/core/

# patch-guard asserts — by counters, not timing — that a repeat Patch
# against an unchanged analysis re-encodes nothing: every function
# unit's emitted bytes are served from its emit cache (see
# TestPatchReuseGuard).
patch-guard:
	$(GO) test -run TestPatchReuseGuard -v ./internal/core/

# alloc-guard asserts the hot paths stay inside the allocation budgets
# recorded in the committed trajectory snapshot (TestAllocBudget; skips
# itself when no BENCH_*.json exists yet).
alloc-guard:
	$(GO) test -run TestAllocBudget -v .

# cluster-guard spins up the in-process 3-node cluster under -race and
# asserts byte-identical output from every node and the gateway across
# all arches and modes, including with the owning peer killed
# mid-workload, plus the peer warm path and cluster metrics. Wrapped in
# benchguard with GUARD_MATCH so a renamed test cannot silently turn
# this into a no-op.
cluster-guard:
	GUARD_MATCH='^=== RUN' $(BENCHGUARD) $(GO) test -race -run 'TestCluster' -v ./internal/cluster/

# batch-guard runs the fleet-rewriting acceptance tests under -race:
# dedupe (10 items over 3 binaries → exactly 3 analyses), mid-job
# restart resume with byte-identical outputs, the SSE event contract
# (order, replay, client disconnect), the 413 body caps on every door,
# the batch-lane scheduling invariants, and the full
# batch-through-gateway path. Benchguard-wrapped so a renamed test
# cannot silently turn the guard into a no-op.
batch-guard:
	GUARD_MATCH='^=== RUN' $(BENCHGUARD) $(GO) test -race -run 'TestBatch' -v ./internal/service/batch/ ./internal/service/sched/
	GUARD_MATCH='^=== RUN' $(BENCHGUARD) $(GO) test -race -run 'TestClusterBatch' -v ./internal/cluster/

# profile-guard runs the profile-guided rewriting acceptance tests
# under -race: guided output behaves identically to the original with
# exact counter semantics and fewer cycles, corrupt/empty profiles
# degrade to the unguided bytes, and the 3-arch × 3-mode determinism
# sweep pins serial ≡ parallel ≡ emit-cache ≡ delta for guided plans.
# Benchguard-wrapped so a renamed test cannot silently turn the guard
# into a no-op.
profile-guard:
	GUARD_MATCH='^=== RUN' $(BENCHGUARD) $(GO) test -race -run 'TestProfileGuided' -v ./internal/core/

# landing-guard runs the landing-pad evidence acceptance tests under
# -race: sound func-ptr acceptance on CFI builds across all three ISAs
# (with the rewritten binaries re-run under CET enforcement), the
# degradation contract (marker-less byte-identity, corrupt markers take
# the conservative path), and the wire-level feature-bit contract at
# every cluster door. Benchguard-wrapped so a renamed test cannot
# silently turn the guard into a no-op.
landing-guard:
	GUARD_MATCH='^=== RUN' $(BENCHGUARD) $(GO) test -race -run 'TestSoundFuncPtrWithLandingPads|TestRewrittenCFIBinaryPassesCET|TestMarkerlessByteIdentity|TestCorruptMarkersDegrade' -v .
	GUARD_MATCH='^=== RUN' $(BENCHGUARD) $(GO) test -race -run 'TestUnknownFeatureBitsRejectedAtEveryDoor|TestNoEvidenceFeatureEndToEnd' -v ./internal/cluster/

# bench-record measures the current build's performance trajectory and
# writes the snapshot this PR commits. Run it once per perf-relevant PR
# on an idle machine; `make check` then gates against the result.
bench-record:
	$(GO) run ./cmd/icfg-experiments -bench-record $(BENCH_BASELINE) -bench-pr $(BENCH_PR)

# bench-compare re-measures the current build and gates it against the
# committed snapshot, failing on latency or allocs/op regressions
# beyond the default tolerances.
bench-compare:
	$(GO) run ./cmd/icfg-experiments -bench-compare $(BENCH_BASELINE)

check: fmt-check vet race fuzz-seed bench-warm bench-delta bench-patch obs-guard delta-guard patch-guard alloc-guard cluster-guard batch-guard profile-guard landing-guard bench-compare
