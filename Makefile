GO ?= go

.PHONY: build test short race vet fmt fmt-check bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem .

check: fmt-check vet race
