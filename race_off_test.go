//go:build !race

package icfgpatch_test

// raceEnabled reports whether the race detector is compiled in; timing
// guards skip themselves under it.
const raceEnabled = false
