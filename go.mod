module icfgpatch

go 1.22
