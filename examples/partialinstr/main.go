// Partial instrumentation, Diogenes style (paper Section 9): instrument
// a small subset of a large driver-like library's functions with entry
// counters, leaving the other ~1100 functions untouched — the capability
// all-or-nothing IR lowering cannot offer. The example also shows the
// trap-trampoline gap between per-block placement (SRBI) and trampoline
// placement analysis.
package main

import (
	"fmt"
	"log"
	"sort"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/baseline"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
	"icfgpatch/internal/workload"
)

func main() {
	p, err := workload.Libcuda(arch.X64)
	if err != nil {
		log.Fatal(err)
	}
	total := len(p.Binary.FuncSymbols())
	targets := workload.DiogenesTargets(p, 70)
	fmt.Printf("libcuda-like driver: %d functions; instrumenting %d\n", total, len(targets))

	req := instrument.Request{
		Where:   instrument.FuncEntry,
		Payload: instrument.PayloadCounter,
		Funcs:   targets,
	}

	// IR lowering refuses the library outright.
	if _, err := baseline.IRLower(p.Binary, baseline.IRLowerOptions{Request: req}); err != nil {
		fmt.Println("IR lowering:", err)
	}

	// Incremental CFG patching instruments just the subset.
	ours, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeJT, Request: req, Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	srbi, err := baseline.SRBI(p.Binary, baseline.SRBIOptions{Request: req, Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trap trampolines: ours=%d, per-block placement=%d\n",
		ours.Stats.TrapCount(), srbi.Stats.TrapCount())

	lib, err := rtlib.Preload(ours.Binary)
	if err != nil {
		log.Fatal(err)
	}
	m, err := emu.Load(ours.Binary, emu.Options{Runtime: lib})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}

	// The entry counters identify the hot internal functions — the
	// Diogenes workflow for finding the hidden synchronization routine.
	cells := namedCells(ours, targets)
	names := make([]string, 0, len(cells))
	for name := range cells {
		names = append(names, name)
	}
	sort.Strings(names)
	shown := 0
	for _, name := range names {
		count, err := m.MemRead(cells[name], 8)
		if err != nil {
			log.Fatal(err)
		}
		if count > 0 && shown < 10 {
			fmt.Printf("  %s entered %d times\n", name, count)
			shown++
		}
	}
}

// namedCells maps instrumented function names to their counter cells.
// CounterCells is keyed by original entry address; resolve names through
// the binary's symbol table.
func namedCells(res *core.Result, targets []string) map[string]uint64 {
	out := map[string]uint64{}
	for point, cell := range res.CounterCells {
		if f, ok := res.Binary.FuncAt(point); ok && f.Addr == point {
			out[f.Name] = cell
		}
	}
	_ = targets
	return out
}
