// Failure modes (paper Figure 2 / Section 4.3): how binary analysis
// failures map to binary rewriting outcomes.
//
//   - Analysis reporting failure  -> lower coverage; everything else works.
//   - Over-approximation          -> wasted clone entries and trampolines;
//     still correct (tables are cloned, never rewritten in place).
//   - Under-approximation         -> wrong rewriting — the only
//     catastrophic case, which the verification fill turns into an
//     immediate illegal-instruction fault instead of silent corruption.
package main

import (
	"fmt"
	"log"

	"icfgpatch/internal/experiments"
)

func main() {
	res, err := experiments.Figure2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println()
	fmt.Println("Interpretation:")
	fmt.Printf("  1. A function with an unanalysable jump table was skipped: coverage %.1f%%,\n", 100*res.AnalysisCoverage)
	fmt.Println("     every other function instrumented and the program behaved identically.")
	fmt.Printf("  2. Spilled bounds forced Assumption-2 extension: %d extra table entries were\n", res.OverApproxExtraEntries)
	fmt.Println("     cloned; because clones live at new addresses, over-approximation cannot corrupt data.")
	fmt.Println("  3. A mis-classified indirect tail call (forced) produced an under-approximated")
	fmt.Printf("     CFG; verification caught it: %v\n", res.UnderApproxDetected)
}
