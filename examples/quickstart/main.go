// Quickstart: build a small program with the synthetic toolchain,
// rewrite it with incremental CFG patching (jt mode) inserting
// block-execution counters, run both images in the emulator, and check
// instrumentation integrity: every counter equals the block's true
// execution count.
package main

import (
	"fmt"
	"log"
	"sort"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
)

func main() {
	// 1. Build a program: a loop dispatching i%3 through a jump table.
	b := asm.New(arch.X64, true)
	f := b.Func("main")
	f.SetFrame(32)
	f.Li(arch.R3, 0)
	f.Li(arch.R4, 0)
	top := f.Here()
	f.Li(arch.R7, 3)
	f.Op3(arch.Div, arch.R8, arch.R4, arch.R7)
	f.Op3(arch.Mul, arch.R8, arch.R8, arch.R7)
	f.Op3(arch.Sub, arch.R8, arch.R4, arch.R8)
	cases := []asm.Label{f.NewLabel(), f.NewLabel(), f.NewLabel()}
	def := f.NewLabel()
	join := f.NewLabel()
	f.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{})
	for k, c := range cases {
		f.Bind(c)
		f.OpI(arch.Add, arch.R3, arch.R3, int64(k+1))
		f.BranchTo(join)
	}
	f.Bind(def)
	f.Bind(join)
	f.OpI(arch.Add, arch.R4, arch.R4, 1)
	f.OpI(arch.Sub, arch.R9, arch.R4, 30)
	f.BranchCondTo(arch.LT, arch.R9, top)
	f.Print(arch.R3)
	f.Halt()
	b.SetEntry("main")
	img, _, err := b.Link()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run the original (with a ground-truth block profile).
	orig, err := emu.Load(img, emu.Options{})
	if err != nil {
		log.Fatal(err)
	}
	origRes, err := orig.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original:  output=%q cycles=%d\n", origRes.Output, origRes.Cycles)

	// 3. Rewrite: every basic block gets an execution counter.
	res, err := core.Rewrite(img, core.Options{
		Mode: core.ModeJT,
		Request: instrument.Request{
			Where:   instrument.BlockEntry,
			Payload: instrument.PayloadCounter,
		},
		Verify: true, // stale original code becomes illegal instructions
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewritten: %d blocks instrumented, %d jump tables cloned, trampolines %v\n",
		len(res.CounterCells), res.Stats.ClonedTables, res.Stats.Trampolines)

	// 4. Run the rewritten binary with the runtime library preloaded.
	lib, err := rtlib.Preload(res.Binary)
	if err != nil {
		log.Fatal(err)
	}
	m, err := emu.Load(res.Binary, emu.Options{Runtime: lib})
	if err != nil {
		log.Fatal(err)
	}
	got, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewritten: output=%q cycles=%d (overhead %.2f%%)\n",
		got.Output, got.Cycles, 100*(float64(got.Cycles)/float64(origRes.Cycles)-1))
	if string(got.Output) != string(origRes.Output) {
		log.Fatal("outputs diverged!")
	}

	// 5. Read the counters back (sorted for stable output).
	fmt.Println("block execution counts:")
	points := make([]uint64, 0, len(res.CounterCells))
	for point := range res.CounterCells {
		points = append(points, point)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	for _, point := range points {
		count, err := m.MemRead(res.CounterCells[point], 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  block %#x executed %d times\n", point, count)
	}
}
