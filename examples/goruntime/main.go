// Go runtime support (paper Section 6.2): rewrite a Docker-like Go
// binary whose runtime natively walks the stack (garbage collection
// model). With runtime return-address translation the tracebacks keep
// working against the unmodified pclntab; without it the Go runtime
// aborts the moment it meets a relocated return address.
package main

import (
	"fmt"
	"log"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
	"icfgpatch/internal/workload"
)

func main() {
	p, err := workload.Docker(arch.X64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("docker-like Go binary: %d functions, pclntab present, no jump tables\n",
		len(p.Binary.FuncSymbols()))

	req := instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty}

	// func-ptr mode refuses the Go function table (Listing 1 territory).
	if _, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeFuncPtr, Request: req, Verify: true}); err != nil {
		fmt.Println("func-ptr mode:", err)
	}

	// jt mode with RA translation: the "docker run" command (#2) works.
	rw, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeJT, Request: req, Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jt mode: coverage %.2f%%, %d ra_map entries\n",
		100*rw.Stats.Coverage(), rw.Stats.RAMapEntries)

	origM, _ := emu.Load(p.Binary, emu.Options{Arg: 2})
	orig, err := origM.Run()
	if err != nil {
		log.Fatal(err)
	}
	lib, _ := rtlib.Preload(rw.Binary)
	m, _ := emu.Load(rw.Binary, emu.Options{Arg: 2, Runtime: lib})
	got, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("docker run: outputs match=%v, %d GC stack walks, overhead %.2f%%\n",
		string(got.Output) == string(orig.Output), got.Walks,
		100*(float64(got.Cycles)/float64(orig.Cycles)-1))

	// Without the RA map: the Go runtime aborts on the first traceback.
	broken, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeJT, Request: req, Verify: true, NoRAMap: true})
	if err != nil {
		log.Fatal(err)
	}
	blib, _ := rtlib.Preload(broken.Binary)
	bm, _ := emu.Load(broken.Binary, emu.Options{Arg: 2, Runtime: blib})
	if _, err := bm.Run(); err != nil {
		fmt.Println("without RA translation:", err)
	} else {
		fmt.Println("without RA translation: unexpectedly survived")
	}
}
