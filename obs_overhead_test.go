package icfgpatch_test

import (
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/obs"
	"icfgpatch/internal/workload"
)

// TestObsOverheadGuard enforces the observability budget: tracing a
// warm Patch of the libxul-like workload must cost no more than 2%
// over the untraced run. The span tree is priced per request (one
// NewTrace, ~10 child spans, a dozen attributes), so a regression here
// means instrumentation crept into a hot loop.
//
// Timing comparisons are noisy, so the guard takes the best of several
// rounds: a single round within budget proves the instrumentation
// itself is cheap, while persistent failure across all rounds means a
// real regression.
func TestObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under the race detector")
	}
	p, err := workload.LibxulCached(arch.X64)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Mode: core.ModeJT, Request: blockEmpty()}
	an, err := core.Analyze(p.Binary, core.AnalysisConfig{Mode: opts.Mode})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Patch(opts); err != nil { // prime lazy placements
		t.Fatal(err)
	}

	measure := func(trace bool) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := opts
				if trace {
					o.Trace = obs.NewTrace("rewrite")
				}
				if _, err := an.Patch(o); err != nil {
					b.Fatal(err)
				}
				o.Trace.End()
			}
		})
		return float64(r.NsPerOp())
	}

	const budget, rounds = 0.02, 5
	worst := 0.0
	for r := 0; r < rounds; r++ {
		base := measure(false)
		traced := measure(true)
		ratio := traced/base - 1
		t.Logf("round %d: untraced %.0fns traced %.0fns overhead %+.2f%%", r, base, traced, 100*ratio)
		if ratio <= budget {
			return
		}
		if ratio > worst {
			worst = ratio
		}
	}
	t.Errorf("tracing overhead exceeded %.0f%% in all %d rounds (worst %+.2f%%)", 100*budget, rounds, 100*worst)
}
